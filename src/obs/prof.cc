#include "src/obs/prof.h"

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <vector>

#include "src/obs/json.h"
#include "src/obs/json_parse.h"
#include "src/obs/span.h"

namespace pvm::prof {

namespace {

void appendf(std::string* out, const char* fmt, ...) {
  char buf[256];
  va_list args;
  va_start(args, fmt);
  const int n = std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  if (n > 0) {
    out->append(buf, static_cast<std::size_t>(n) < sizeof(buf)
                         ? static_cast<std::size_t>(n)
                         : sizeof(buf) - 1);
  }
}

std::string format_ns(std::uint64_t ns) {
  std::string out;
  if (ns < 1000) {
    appendf(&out, "%lluns", static_cast<unsigned long long>(ns));
  } else if (ns < 1000 * 1000) {
    appendf(&out, "%.1fus", static_cast<double>(ns) / 1e3);
  } else if (ns < 1000ull * 1000 * 1000) {
    appendf(&out, "%.2fms", static_cast<double>(ns) / 1e6);
  } else {
    appendf(&out, "%.3fs", static_cast<double>(ns) / 1e9);
  }
  return out;
}

std::uint64_t as_u64(const obs::JsonValue& v) {
  return v.number < 0 ? 0 : static_cast<std::uint64_t>(v.number);
}

std::int64_t as_i64(const obs::JsonValue& v) { return static_cast<std::int64_t>(v.number); }

// One reconstructed span-tree node. Children are indices into the fold's
// node arena, in chronological (open-order) sequence.
struct Node {
  obs::TimeNs begin = 0;
  obs::TimeNs end = 0;
  std::int64_t track = -1;
  obs::Phase phase = obs::Phase::kCount;
  // Resolved resource name for lock-wait spans (from the lock-track mirror
  // record that follows the main record); empty otherwise.
  std::string lock_name;
  std::vector<std::size_t> children;
};

// The "worse worst-instance" total order used on merge: larger latency wins;
// ties prefer the earlier begin, then the smaller track. Total, so merging
// shards in any order keeps the same survivor.
bool worst_worse(const OpProfile& a, const OpProfile& b) {
  if (a.worst_ns != b.worst_ns) {
    return a.worst_ns > b.worst_ns;
  }
  if (a.worst_begin_ns != b.worst_begin_ns) {
    return a.worst_begin_ns < b.worst_begin_ns;
  }
  return a.worst_track < b.worst_track;
}

// State of the fold: the node arena, migration-op intervals for cross-track
// attribution, and per-op-kind accumulation of instances.
struct Fold {
  std::vector<Node> nodes;
  // [begin, end) of every kOpMigration span, any track.
  std::vector<std::pair<obs::TimeNs, obs::TimeNs>> migration_intervals;

  struct Instance {
    std::uint64_t latency = 0;
    obs::TimeNs begin = 0;
    std::int64_t track = -1;
    // (path, exclusive_ns) contributions of this instance, in visit order.
    std::vector<std::pair<std::string, std::uint64_t>> contributions;
  };
  // Op phase name -> instances in close order (close order is deterministic).
  std::map<std::string, std::vector<Instance>, std::less<>> instances;
  // Cross-track contributions redirected into the migration op: path ->
  // (exclusive_ns, count). Not bound to one instance, so they join paths but
  // never tail_paths or the latency histogram.
  std::map<std::string, PathStat> migration_redirect;

  bool in_migration_interval(obs::TimeNs t) const {
    for (const auto& [begin, end] : migration_intervals) {
      if (t >= begin && t < end) {
        return true;
      }
    }
    return false;
  }

  std::uint64_t subtree_child_ns(const Node& node) const {
    std::uint64_t child_ns = 0;
    for (std::size_t child : node.children) {
      child_ns += nodes[child].end - nodes[child].begin;
    }
    return child_ns;
  }

  std::string component(const Node& node) const {
    if (node.phase == obs::Phase::kLockWait && !node.lock_name.empty()) {
      return "lock_wait:" + node.lock_name;
    }
    return std::string(obs::phase_name(node.phase));
  }

  // Accumulates `node`'s subtree into the migration op under
  // "op.migration;dirty_track;..." (the cross-track redirect).
  void redirect_subtree(std::size_t index, const std::string& path) {
    const Node& node = nodes[index];
    const std::uint64_t total = node.end - node.begin;
    const std::uint64_t child_ns = subtree_child_ns(node);
    PathStat& stat = migration_redirect[path];
    stat.exclusive_ns += total > child_ns ? total - child_ns : 0;
    ++stat.count;
    for (std::size_t child : node.children) {
      redirect_subtree(child, path + ";" + component(nodes[child]));
    }
  }

  // Walks `node` with the nearest enclosing op instance (or none). `path` is
  // the instance-relative phase path ("op.page_fault;spt_fill;...").
  void visit(std::size_t index, Instance* op, bool op_is_migration,
             const std::string& path) {
    const Node& node = nodes[index];
    // A dirty-tracking span paid by a non-migration track while a migration
    // op is in flight is the migration's cost: redirect the whole subtree.
    if (node.phase == obs::Phase::kDirtyTrack && !op_is_migration &&
        in_migration_interval(node.begin)) {
      redirect_subtree(index,
                       std::string(obs::phase_name(obs::Phase::kOpMigration)) +
                           ";" + component(node));
      return;
    }
    Instance local;
    Instance* current = op;
    std::string current_path = path;
    bool current_is_migration = op_is_migration;
    if (obs::phase_is_op(node.phase)) {
      // A new op instance: path restarts at the op root.
      local.latency = node.end - node.begin;
      local.begin = node.begin;
      local.track = node.track;
      current = &local;
      current_path = component(node);
      current_is_migration = node.phase == obs::Phase::kOpMigration;
    } else if (current != nullptr) {
      current_path = path + ";" + component(node);
    }
    std::uint64_t child_ns = 0;
    for (std::size_t child : node.children) {
      child_ns += nodes[child].end - nodes[child].begin;
      visit(child, current, current_is_migration, current_path);
    }
    if (current != nullptr) {
      const std::uint64_t total = node.end - node.begin;
      current->contributions.emplace_back(
          current_path, total > child_ns ? total - child_ns : 0);
    }
    if (current == &local) {
      instances[std::string(obs::phase_name(node.phase))].push_back(std::move(local));
    }
  }
};

}  // namespace

ProfDoc fold_profile(const obs::SpanRecorder& recorder, std::size_t first_span) {
  ProfDoc doc;
  doc.dropped_spans = recorder.dropped_spans();
  const std::vector<obs::SpanRecord>& records = recorder.spans();
  if (first_span >= records.size()) {
    return doc;
  }

  // Invert lock_tracks() so a lock-track mirror record resolves to its
  // resource name.
  std::map<std::int64_t, std::string_view> track_names;
  for (const auto& [name, track] : recorder.lock_tracks()) {
    track_names.emplace(track, name);
  }

  Fold fold;
  // Rebuild one tree forest per main track from the close-ordered record
  // stream: a record at depth d adopts the trailing pending subtrees at depth
  // d+1 that began after it (they closed earlier and nest inside it).
  std::map<std::int64_t, std::vector<std::size_t>> pending;  // completed roots-so-far
  std::vector<std::size_t> roots;                            // depth-0 nodes, close order
  for (std::size_t i = first_span; i < records.size(); ++i) {
    const obs::SpanRecord& record = records[i];
    if (record.track >= obs::SpanRecorder::kLockTrackBase) {
      continue;  // lock-track mirror; consumed via adjacency below
    }
    Node node;
    node.begin = record.begin_ns;
    node.end = record.end_ns;
    node.track = record.track;
    node.phase = record.phase;
    if (record.phase == obs::Phase::kLockWait && i + 1 < records.size() &&
        records[i + 1].track >= obs::SpanRecorder::kLockTrackBase &&
        records[i + 1].begin_ns == record.begin_ns &&
        records[i + 1].end_ns == record.end_ns) {
      const auto it = track_names.find(records[i + 1].track);
      if (it != track_names.end()) {
        node.lock_name = it->second;
      }
    }
    std::vector<std::size_t>& stack = pending[record.track];
    std::size_t adopted = 0;
    while (adopted < stack.size()) {
      const Node& candidate = fold.nodes[stack[stack.size() - 1 - adopted]];
      if (candidate.begin < record.begin_ns) {
        break;
      }
      ++adopted;
    }
    // The adopted tail is in close order = reverse chronological open order.
    node.children.assign(stack.end() - static_cast<std::ptrdiff_t>(adopted), stack.end());
    std::reverse(node.children.begin(), node.children.end());
    stack.resize(stack.size() - adopted);
    const std::size_t index = fold.nodes.size();
    fold.nodes.push_back(std::move(node));
    if (record.depth == 0) {
      roots.push_back(index);
    } else {
      stack.push_back(index);
    }
    if (record.phase == obs::Phase::kOpMigration) {
      fold.migration_intervals.emplace_back(record.begin_ns, record.end_ns);
    }
  }
  // Spans still pending at depth > 0 have no enclosing record (their parent
  // never closed); treat them as roots so their time is not lost.
  for (const auto& [track, stack] : pending) {
    roots.insert(roots.end(), stack.begin(), stack.end());
  }

  for (std::size_t root : roots) {
    fold.visit(root, /*op=*/nullptr, /*op_is_migration=*/false, /*path=*/{});
  }

  // Aggregate instances per op kind: latency histogram, path sums, then the
  // tail cohort cut at this fold's bucketed p99.
  for (auto& [op_name, instances] : fold.instances) {
    OpProfile& profile = doc.ops[op_name];
    for (const Fold::Instance& instance : instances) {
      profile.latency.record(instance.latency);
      for (const auto& [path, exclusive] : instance.contributions) {
        PathStat& stat = profile.paths[path];
        stat.exclusive_ns += exclusive;
        ++stat.count;
      }
      if (instance.latency > profile.worst_ns ||
          (profile.worst_track < 0 && profile.latency.count() == 1)) {
        profile.worst_ns = instance.latency;
        profile.worst_begin_ns = instance.begin;
        profile.worst_track = instance.track;
      }
    }
    profile.tail_threshold_ns = profile.latency.quantile(0.99);
    for (const Fold::Instance& instance : instances) {
      if (instance.latency < profile.tail_threshold_ns) {
        continue;
      }
      for (const auto& [path, exclusive] : instance.contributions) {
        PathStat& stat = profile.tail_paths[path];
        stat.exclusive_ns += exclusive;
        ++stat.count;
      }
    }
  }
  // Cross-track redirects land on the migration op even when the folding
  // recorder never saw the migration root itself.
  if (!fold.migration_redirect.empty()) {
    OpProfile& profile = doc.ops[std::string(obs::phase_name(obs::Phase::kOpMigration))];
    for (const auto& [path, stat] : fold.migration_redirect) {
      PathStat& into = profile.paths[path];
      into.exclusive_ns += stat.exclusive_ns;
      into.count += stat.count;
    }
  }
  return doc;
}

bool merge_profile(ProfDoc* into, const ProfDoc& from, std::string* error) {
  (void)error;
  for (const auto& [name, profile] : from.ops) {
    auto it = into->ops.find(name);
    if (it == into->ops.end()) {
      into->ops.emplace(name, profile);
      continue;
    }
    OpProfile& dst = it->second;
    dst.latency.merge(profile.latency);
    for (const auto& [path, stat] : profile.paths) {
      PathStat& d = dst.paths[path];
      d.exclusive_ns += stat.exclusive_ns;
      d.count += stat.count;
    }
    for (const auto& [path, stat] : profile.tail_paths) {
      PathStat& d = dst.tail_paths[path];
      d.exclusive_ns += stat.exclusive_ns;
      d.count += stat.count;
    }
    dst.tail_threshold_ns = std::max(dst.tail_threshold_ns, profile.tail_threshold_ns);
    if (worst_worse(profile, dst)) {
      dst.worst_ns = profile.worst_ns;
      dst.worst_begin_ns = profile.worst_begin_ns;
      dst.worst_track = profile.worst_track;
    }
  }
  into->dropped_spans += from.dropped_spans;
  return true;
}

ProfDoc prefix_profile(const ProfDoc& doc, std::string_view prefix) {
  ProfDoc out;
  out.dropped_spans = doc.dropped_spans;
  for (const auto& [name, profile] : doc.ops) {
    out.ops.emplace(std::string(prefix) + name, profile);
  }
  return out;
}

std::string render_profile_json(const ProfDoc& doc) {
  obs::JsonWriter w;
  w.begin_object();
  w.key("schema").value(kProfileSchemaVersion);
  w.key("dropped_spans").value(doc.dropped_spans);
  w.key("ops").begin_array();
  for (const auto& [name, profile] : doc.ops) {
    w.begin_object();
    w.key("name").value(name);
    w.key("count").value(profile.latency.count());
    w.key("sum_ns").value(profile.latency.sum());
    w.key("min_ns").value(profile.latency.min());
    w.key("max_ns").value(profile.latency.max());
    w.key("p50_ns").value(profile.latency.quantile(0.50));
    w.key("p99_ns").value(profile.latency.quantile(0.99));
    w.key("buckets").begin_array();
    for (const auto& [index, n] : profile.latency.buckets()) {
      w.begin_array().value(static_cast<std::uint64_t>(index)).value(n).end_array();
    }
    w.end_array();
    w.key("tail_threshold_ns").value(profile.tail_threshold_ns);
    w.key("worst_ns").value(profile.worst_ns);
    w.key("worst_begin_ns").value(profile.worst_begin_ns);
    w.key("worst_track").value(profile.worst_track);
    w.key("paths").begin_array();
    for (const auto& [path, stat] : profile.paths) {
      w.begin_object();
      w.key("path").value(path);
      w.key("excl_ns").value(stat.exclusive_ns);
      w.key("count").value(stat.count);
      w.end_object();
    }
    w.end_array();
    w.key("tail_paths").begin_array();
    for (const auto& [path, stat] : profile.tail_paths) {
      w.begin_object();
      w.key("path").value(path);
      w.key("excl_ns").value(stat.exclusive_ns);
      w.key("count").value(stat.count);
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str() + "\n";
}

bool parse_profile_json(std::string_view text, ProfDoc* out, std::string* error) {
  const auto fail = [error](std::string message) {
    if (error != nullptr) {
      *error = std::move(message);
    }
    return false;
  };
  obs::JsonValue root;
  std::string parse_error;
  if (!obs::json_parse(text, &root, &parse_error)) {
    return fail("bad JSON: " + parse_error);
  }
  const obs::JsonValue* schema = root.find("schema");
  if (schema == nullptr || !schema->is_string() || schema->string != kProfileSchemaVersion) {
    return fail("not a pvm.profile.v1 document");
  }
  ProfDoc doc;
  if (const obs::JsonValue* v = root.find("dropped_spans"); v != nullptr && v->is_number()) {
    doc.dropped_spans = as_u64(*v);
  }
  const obs::JsonValue* ops = root.find("ops");
  if (ops == nullptr || !ops->is_array()) {
    return fail("missing ops array");
  }
  const auto parse_paths = [](const obs::JsonValue* array,
                              std::map<std::string, PathStat>* into) {
    if (array == nullptr || !array->is_array()) {
      return;
    }
    for (const obs::JsonValue& entry : array->array) {
      const obs::JsonValue* path = entry.find("path");
      if (path == nullptr || !path->is_string()) {
        continue;
      }
      PathStat stat;
      if (const obs::JsonValue* v = entry.find("excl_ns")) stat.exclusive_ns = as_u64(*v);
      if (const obs::JsonValue* v = entry.find("count")) stat.count = as_u64(*v);
      (*into)[path->string] = stat;
    }
  };
  for (const obs::JsonValue& entry : ops->array) {
    const obs::JsonValue* name = entry.find("name");
    const obs::JsonValue* count = entry.find("count");
    const obs::JsonValue* sum = entry.find("sum_ns");
    const obs::JsonValue* min = entry.find("min_ns");
    const obs::JsonValue* max = entry.find("max_ns");
    const obs::JsonValue* buckets = entry.find("buckets");
    if (name == nullptr || !name->is_string() || count == nullptr || sum == nullptr ||
        min == nullptr || max == nullptr || buckets == nullptr || !buckets->is_array()) {
      return fail("malformed op entry");
    }
    OpProfile profile;
    std::map<std::uint32_t, std::uint64_t> parsed;
    for (const obs::JsonValue& pair : buckets->array) {
      if (!pair.is_array() || pair.array.size() != 2) {
        return fail("malformed bucket pair in op " + name->string);
      }
      parsed[static_cast<std::uint32_t>(as_u64(pair.array[0]))] = as_u64(pair.array[1]);
    }
    profile.latency = ts::MergeableHistogram::from_parts(
        as_u64(*count), as_u64(*sum), as_u64(*min), as_u64(*max), std::move(parsed));
    if (const obs::JsonValue* v = entry.find("tail_threshold_ns")) {
      profile.tail_threshold_ns = as_u64(*v);
    }
    if (const obs::JsonValue* v = entry.find("worst_ns")) profile.worst_ns = as_u64(*v);
    if (const obs::JsonValue* v = entry.find("worst_begin_ns")) {
      profile.worst_begin_ns = as_u64(*v);
    }
    if (const obs::JsonValue* v = entry.find("worst_track")) profile.worst_track = as_i64(*v);
    parse_paths(entry.find("paths"), &profile.paths);
    parse_paths(entry.find("tail_paths"), &profile.tail_paths);
    doc.ops.emplace(name->string, std::move(profile));
  }
  *out = std::move(doc);
  return true;
}

std::string render_collapsed_stacks(const ProfDoc& doc) {
  std::string out;
  for (const auto& [name, profile] : doc.ops) {
    for (const auto& [path, stat] : profile.paths) {
      // The path's first component repeats the op root; splice the op key (which
      // carries the sweep-coordinate prefix) in its place.
      const std::size_t semi = path.find(';');
      out += name;
      if (semi != std::string::npos) {
        out += path.substr(semi);
      }
      appendf(&out, " %llu\n", static_cast<unsigned long long>(stat.exclusive_ns));
    }
  }
  return out;
}

std::string render_blame(const ProfDoc& doc, const BlameOptions& options) {
  std::string out;
  std::size_t matched = 0;
  for (const auto& [name, profile] : doc.ops) {
    if (!options.filter.empty() && name.find(options.filter) == std::string::npos) {
      continue;
    }
    ++matched;
    out += "op " + name + ": ";
    appendf(&out, "count=%llu p50=%s p99=%s max=%s",
            static_cast<unsigned long long>(profile.latency.count()),
            format_ns(profile.latency.quantile(0.50)).c_str(),
            format_ns(profile.latency.quantile(0.99)).c_str(),
            format_ns(profile.latency.max()).c_str());
    if (profile.worst_track >= 0) {
      appendf(&out, "  worst=%s @t=%llu track=%lld",
              format_ns(profile.worst_ns).c_str(),
              static_cast<unsigned long long>(profile.worst_begin_ns),
              static_cast<long long>(profile.worst_track));
    }
    out += "\n";
    const auto render_paths = [&](const std::map<std::string, PathStat>& paths,
                                  std::string_view header) {
      if (paths.empty()) {
        return;
      }
      std::uint64_t total = 0;
      for (const auto& [path, stat] : paths) {
        total += stat.exclusive_ns;
      }
      // Sort by exclusive time descending; ties break on path name so the
      // table is deterministic.
      std::vector<std::pair<std::string_view, const PathStat*>> rows;
      rows.reserve(paths.size());
      for (const auto& [path, stat] : paths) {
        rows.emplace_back(path, &stat);
      }
      std::sort(rows.begin(), rows.end(), [](const auto& x, const auto& y) {
        if (x.second->exclusive_ns != y.second->exclusive_ns) {
          return x.second->exclusive_ns > y.second->exclusive_ns;
        }
        return x.first < y.first;
      });
      out += "  ";
      out += header;
      out += "\n";
      const std::size_t shown = std::min(options.top_k, rows.size());
      for (std::size_t i = 0; i < shown; ++i) {
        const double share =
            total == 0 ? 0.0
                       : 100.0 * static_cast<double>(rows[i].second->exclusive_ns) /
                             static_cast<double>(total);
        appendf(&out, "    %5.1f%% %10s %8llu  ", share,
                format_ns(rows[i].second->exclusive_ns).c_str(),
                static_cast<unsigned long long>(rows[i].second->count));
        // Direct append: span paths can outgrow appendf's fixed buffer.
        out += rows[i].first;
        out += "\n";
      }
      if (rows.size() > shown) {
        appendf(&out, "    ... %llu more paths\n",
                static_cast<unsigned long long>(rows.size() - shown));
      }
    };
    render_paths(profile.paths, "critical-path share (all instances):");
    if (!profile.tail_paths.empty()) {
      std::string header = "tail cohort (latency >= ";
      header += format_ns(profile.tail_threshold_ns);
      header += "):";
      render_paths(profile.tail_paths, header);
    }
    out += "\n";
  }
  if (matched == 0) {
    out += options.filter.empty() ? "no operations recorded\n"
                                  : "no operations match filter \"" + options.filter + "\"\n";
  }
  if (doc.dropped_spans != 0) {
    appendf(&out, "warning: %llu spans dropped at record time; shares are lower bounds\n",
            static_cast<unsigned long long>(doc.dropped_spans));
  }
  return out;
}

}  // namespace pvm::prof
