#include "src/guest/guest_kernel.h"

#include <stdexcept>

#include "src/obs/span.h"

namespace pvm {

GuestKernel::GuestKernel(Simulation& sim, const CostModel& costs, CounterSet& counters,
                         FrameAllocator& gpa_frames, MemoryBackend& mem, CpuBackend& cpu,
                         bool kpti)
    : sim_(&sim),
      costs_(&costs),
      counters_(&counters),
      gpa_frames_(&gpa_frames),
      mem_(&mem),
      cpu_(&cpu),
      kpti_(kpti),
      zone_lock_(sim, "guest.zone_lock") {}

GuestProcess* GuestKernel::process_by_pid(std::uint64_t pid) {
  for (const auto& proc : processes_) {
    if (proc && proc->pid() == pid) {
      return proc.get();
    }
  }
  return nullptr;
}

void GuestKernel::note_cow_share(std::uint64_t frame) { ++cow_refs_[frame]; }

int GuestKernel::cow_refs(std::uint64_t frame) const {
  auto it = cow_refs_.find(frame);
  return it == cow_refs_.end() ? 1 : it->second;
}

void GuestKernel::release_frame(std::uint64_t frame) {
  auto it = cow_refs_.find(frame);
  if (it != cow_refs_.end()) {
    if (--it->second > 0) {
      return;  // other owners remain
    }
    cow_refs_.erase(it);
  }
  gpa_frames_->free(frame);
}

Task<GuestProcess*> GuestKernel::create_init_process(Vcpu& vcpu, int initial_pages) {
  auto proc = std::make_unique<GuestProcess>(next_pid_++, *gpa_frames_);
  GuestProcess* raw = proc.get();
  processes_.push_back(std::move(proc));

  // Standard layout: code, heap (grown by mmap), stack, and a kernel half
  // (kernel stacks / slab pages this process will fault in on demand).
  raw->vmas()[GuestProcess::kCodeBase] = Vma{GuestProcess::kCodeBase, 64ull << 20, true};
  raw->vmas()[GuestProcess::kStackBase] = Vma{GuestProcess::kStackBase, 16ull << 20, true};
  raw->vmas()[GuestProcess::kKernelBase] = Vma{GuestProcess::kKernelBase, 64ull << 20, true};

  mem_->on_process_created(*raw);
  co_await mem_->activate_process(vcpu, *raw, /*kernel_ring=*/false);

  // Fault in the resident footprint: code + stack pages.
  for (int i = 0; i < initial_pages; ++i) {
    const bool code = i % 2 == 0;
    const std::uint64_t base = code ? GuestProcess::kCodeBase : GuestProcess::kStackBase;
    co_await touch(vcpu, *raw, base + static_cast<std::uint64_t>(i / 2) * kPageSize, !code);
  }
  co_return raw;
}

Task<void> GuestKernel::touch(Vcpu& vcpu, GuestProcess& proc, std::uint64_t gva, bool write) {
  co_await mem_->access(vcpu, proc, *this, gva, write ? AccessType::kWrite : AccessType::kRead,
                        /*user_mode=*/true);
}

Task<void> GuestKernel::touch_kernel(Vcpu& vcpu, GuestProcess& proc, std::uint64_t offset) {
  co_await mem_->access(vcpu, proc, *this, GuestProcess::kKernelBase + offset,
                        AccessType::kWrite, /*user_mode=*/false);
}

Task<void> GuestKernel::handle_page_fault(Vcpu& vcpu, GuestProcess& proc,
                                          const PageFaultInfo& fault) {
  const Vma* vma = proc.find_vma(fault.gva);
  if (vma == nullptr) {
    throw std::logic_error("guest segfault at gva " + std::to_string(fault.gva) +
                           " (simulation bug: workload touched unmapped memory)");
  }
  counters_->add(Counter::kGuestPageFault);
  co_await sim_->delay(costs_->guest_pf_handler);

  if (fault.protection) {
    co_await break_cow(vcpu, proc, fault.gva);
    co_return;
  }
  co_await populate_page(vcpu, proc, fault.gva, vma->writable);
}

Task<void> GuestKernel::populate_page(Vcpu& vcpu, GuestProcess& proc, std::uint64_t gva,
                                      bool writable) {
  const std::uint64_t page = page_base(gva);
  const std::uint64_t frame = gpa_frames_->allocate_or_throw();
  proc.note_data_frame(page, frame);
  co_await sim_->delay(costs_->page_zero);
  PteFlags flags = PteFlags::rw_user();
  flags.writable = writable;
  co_await mem_->gpt_map(vcpu, proc, page, frame, flags);
}

Task<void> GuestKernel::break_cow(Vcpu& vcpu, GuestProcess& proc, std::uint64_t gva) {
  const std::uint64_t page = page_base(gva);
  Pte* pte = proc.gpt().find_pte(page);
  if (pte == nullptr || !pte->present()) {
    // Raced with teardown; treat as fresh population.
    co_await populate_page(vcpu, proc, gva, true);
    co_return;
  }
  counters_->add(Counter::kCowBreak);
  const std::uint64_t old_frame = pte->frame_number();
  if (cow_refs(old_frame) > 1) {
    // Shared: copy into a private frame.
    const std::uint64_t new_frame = gpa_frames_->allocate_or_throw();
    co_await sim_->delay(costs_->page_copy);
    release_frame(old_frame);
    proc.note_data_frame(page, new_frame);
    co_await mem_->gpt_map(vcpu, proc, page, new_frame, PteFlags::rw_user());
    co_return;
  }
  // Sole owner left: just restore write access in place.
  cow_refs_.erase(old_frame);
  co_await mem_->gpt_protect(vcpu, proc, page, /*writable=*/true, /*mark_cow=*/false);
}

Task<GuestProcess*> GuestKernel::sys_fork(Vcpu& vcpu, GuestProcess& parent) {
  co_await cpu_->syscall_enter(vcpu, parent);
  counters_->add(Counter::kProcessForked);
  co_await sim_->delay(costs_->fork_base);

  auto child_owner = std::make_unique<GuestProcess>(next_pid_++, *gpa_frames_);
  GuestProcess* child = child_owner.get();
  processes_.push_back(std::move(child_owner));
  child->vmas() = parent.vmas();
  mem_->on_process_created(*child);

  // COW pass: write-protect every present parent user page (a trapped GPT
  // store under shadow paging) and alias it read-only into the child. The
  // child's fresh page table is not yet registered with any shadow scheme,
  // so its stores are plain memory writes.
  for (const auto& [gva, frame] : parent.data_frames()) {
    if (gva >= GuestProcess::kKernelBase) {
      continue;  // the kernel half is not inherited
    }
    Pte* pte = parent.gpt().find_pte(gva);
    if (pte == nullptr || !pte->present()) {
      continue;
    }
    if (cow_refs_.find(frame) == cow_refs_.end()) {
      cow_refs_[frame] = 1;
    }
    ++cow_refs_[frame];
    if (pte->writable()) {
      co_await mem_->gpt_protect(vcpu, parent, gva, /*writable=*/false, /*mark_cow=*/true);
    }
    PteFlags child_flags = PteFlags::ro_user();
    child_flags.cow = true;
    child->gpt().map(gva, frame, child_flags);
    child->note_data_frame(gva, frame);
    {
      // Page-reference bookkeeping goes through the zone lock.
      ScopedResource zone = co_await zone_lock_.scoped();
      co_await sim_->delay(costs_->guest_pte_store + 25);
    }
  }

  co_await cpu_->syscall_exit(vcpu, parent);
  co_return child;
}

Task<void> GuestKernel::teardown_address_space(Vcpu& vcpu, GuestProcess& proc) {
  std::vector<std::uint64_t> gvas;
  gvas.reserve(proc.data_frames().size());
  for (const auto& [gva, frame] : proc.data_frames()) {
    gvas.push_back(gva);
  }
  co_await mem_->gpt_bulk_teardown(vcpu, proc, gvas);
  for (const auto& [gva, frame] : proc.data_frames()) {
    // Bulk frees return pages to the buddy allocator under the zone lock.
    ScopedResource zone = co_await zone_lock_.scoped();
    release_frame(frame);
    co_await sim_->delay(costs_->guest_pte_store + 25);
  }
  proc.data_frames().clear();
  proc.vmas().clear();
}

Task<void> GuestKernel::sys_exec(Vcpu& vcpu, GuestProcess& proc, int fresh_pages) {
  co_await cpu_->syscall_enter(vcpu, proc);
  counters_->add(Counter::kProcessExeced);
  co_await sim_->delay(costs_->exec_base);

  co_await teardown_address_space(vcpu, proc);
  proc.vmas()[GuestProcess::kCodeBase] = Vma{GuestProcess::kCodeBase, 64ull << 20, true};
  proc.vmas()[GuestProcess::kStackBase] = Vma{GuestProcess::kStackBase, 16ull << 20, true};
  proc.vmas()[GuestProcess::kKernelBase] = Vma{GuestProcess::kKernelBase, 64ull << 20, true};

  for (int i = 0; i < fresh_pages; ++i) {
    const bool code = i % 2 == 0;
    const std::uint64_t base = code ? GuestProcess::kCodeBase : GuestProcess::kStackBase;
    co_await touch(vcpu, proc, base + static_cast<std::uint64_t>(i / 2) * kPageSize, !code);
  }
  co_await cpu_->syscall_exit(vcpu, proc);
}

Task<void> GuestKernel::sys_exit(Vcpu& vcpu, GuestProcess& proc) {
  co_await cpu_->syscall_enter(vcpu, proc);
  co_await teardown_address_space(vcpu, proc);
  co_await mem_->on_process_destroyed(vcpu, proc);
  const std::uint64_t pid = proc.pid();
  kernel_allocs_.erase(pid);
  std::erase_if(processes_,
                [pid](const std::unique_ptr<GuestProcess>& p) { return p->pid() == pid; });
  // No syscall return: the process is gone; the scheduler switches away.
}

Task<std::uint64_t> GuestKernel::sys_mmap(Vcpu& vcpu, GuestProcess& proc, std::uint64_t bytes) {
  co_await cpu_->syscall_enter(vcpu, proc);
  counters_->add(Counter::kMmapCall);
  co_await sim_->delay(costs_->mmap_body);
  const std::uint64_t base = proc.add_vma(bytes, true);
  co_await cpu_->syscall_exit(vcpu, proc);
  co_return base;
}

Task<void> GuestKernel::sys_munmap(Vcpu& vcpu, GuestProcess& proc, std::uint64_t start) {
  co_await cpu_->syscall_enter(vcpu, proc);
  counters_->add(Counter::kMunmapCall);
  co_await sim_->delay(costs_->munmap_body);

  auto vma_it = proc.vmas().find(start);
  if (vma_it == proc.vmas().end()) {
    throw std::logic_error("munmap of unknown vma");
  }
  const Vma vma = vma_it->second;
  // Clear every populated page in the region and release the frames.
  auto& frames = proc.data_frames();
  for (auto it = frames.lower_bound(vma.start); it != frames.end() && it->first < vma.end();) {
    co_await mem_->gpt_unmap(vcpu, proc, it->first);
    release_frame(it->second);
    co_await sim_->delay(costs_->guest_pte_store);
    it = frames.erase(it);
  }
  proc.remove_vma(start);
  co_await cpu_->syscall_exit(vcpu, proc);
}

Task<void> GuestKernel::sys_getpid(Vcpu& vcpu, GuestProcess& proc) {
  counters_->add(Counter::kSyscall);
  co_await cpu_->syscall_enter(vcpu, proc);
  co_await sim_->delay(costs_->guest_syscall_body_getpid);
  co_await cpu_->syscall_exit(vcpu, proc);
}

Task<void> GuestKernel::sys_simple(Vcpu& vcpu, GuestProcess& proc, std::uint64_t body_ns,
                                   int kernel_touches) {
  counters_->add(Counter::kSyscall);
  co_await cpu_->syscall_enter(vcpu, proc);
  co_await sim_->delay(body_ns);
  for (int i = 0; i < kernel_touches; ++i) {
    co_await touch_kernel(vcpu, proc, static_cast<std::uint64_t>(i) * kPageSize);
  }
  co_await cpu_->syscall_exit(vcpu, proc);
}

Task<void> GuestKernel::sys_file_op(Vcpu& vcpu, GuestProcess& proc, std::uint64_t body_ns,
                                    int fresh_pages, int free_pages) {
  counters_->add(Counter::kSyscall);
  co_await cpu_->syscall_enter(vcpu, proc);
  co_await sim_->delay(body_ns);
  std::deque<std::uint64_t>& allocs = kernel_allocs_[proc.pid()];
  for (int i = 0; i < fresh_pages; ++i) {
    const std::uint64_t offset = proc.take_kernel_alloc_offset();
    co_await touch_kernel(vcpu, proc, offset);
    allocs.push_back(GuestProcess::kKernelBase + offset);
  }
  for (int i = 0; i < free_pages && !allocs.empty(); ++i) {
    const std::uint64_t gva = allocs.front();
    allocs.pop_front();
    auto it = proc.data_frames().find(gva);
    if (it != proc.data_frames().end()) {
      co_await mem_->gpt_unmap(vcpu, proc, gva);
      release_frame(it->second);
      proc.data_frames().erase(it);
    }
  }
  co_await cpu_->syscall_exit(vcpu, proc);
}

Task<void> GuestKernel::deliver_signal(Vcpu& vcpu, GuestProcess& proc) {
  // kill() syscall, then the kernel-to-user upcall and sigreturn — all
  // intra-guest transitions (signals never involve the hypervisor).
  co_await cpu_->syscall_enter(vcpu, proc);
  co_await sim_->delay(500);  // signal bookkeeping + frame setup
  co_await cpu_->syscall_exit(vcpu, proc);
  // Handler upcall + sigreturn.
  co_await cpu_->syscall_enter(vcpu, proc);
  co_await sim_->delay(150);
  co_await cpu_->syscall_exit(vcpu, proc);
}

Task<void> GuestKernel::do_io(Vcpu& vcpu, GuestProcess& proc, IoDevice& device,
                              std::uint64_t bytes) {
  obs::SpanScope span(sim_->spans(), obs::Phase::kIo, bytes);
  counters_->add(Counter::kIoRequest);
  co_await cpu_->syscall_enter(vcpu, proc);
  // Doorbell kick: a privileged exit to the hypervisor owning the device.
  co_await cpu_->privileged_op(vcpu, PrivOp::kIoKick);
  device.note_request();
  {
    ScopedResource slot = co_await device.queue().scoped();
    co_await sim_->delay(device.service_time(bytes));
  }
  // Completion interrupt.
  co_await cpu_->interrupt(vcpu);
  co_await cpu_->syscall_exit(vcpu, proc);
}

}  // namespace pvm
