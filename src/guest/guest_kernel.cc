#include "src/guest/guest_kernel.h"

#include <stdexcept>
#include <utility>
#include <vector>

#include "src/obs/flight.h"
#include "src/obs/span.h"

namespace pvm {

GuestKernel::GuestKernel(Simulation& sim, const CostModel& costs, CounterSet& counters,
                         FrameAllocator& gpa_frames, MemoryBackend& mem, CpuBackend& cpu,
                         bool kpti)
    : sim_(&sim),
      costs_(&costs),
      counters_(&counters),
      gpa_frames_(&gpa_frames),
      mem_(&mem),
      cpu_(&cpu),
      kpti_(kpti),
      zone_lock_(sim, "guest.zone_lock") {}

GuestProcess* GuestKernel::process_by_pid(std::uint64_t pid) {
  for (const auto& proc : processes_) {
    if (proc && proc->pid() == pid) {
      return proc.get();
    }
  }
  return nullptr;
}

void GuestKernel::note_cow_share(std::uint64_t frame) { ++cow_refs_[frame]; }

int GuestKernel::cow_refs(std::uint64_t frame) const {
  auto it = cow_refs_.find(frame);
  return it == cow_refs_.end() ? 1 : it->second;
}

void GuestKernel::release_frame(std::uint64_t frame) {
  auto it = cow_refs_.find(frame);
  if (it != cow_refs_.end()) {
    if (--it->second > 0) {
      return;  // other owners remain
    }
    cow_refs_.erase(it);
  }
  gpa_frames_->free(frame);
}

Task<GuestProcess*> GuestKernel::create_init_process(Vcpu& vcpu, int initial_pages) {
  auto proc = std::make_unique<GuestProcess>(next_pid_++, *gpa_frames_);
  GuestProcess* raw = proc.get();
  processes_.push_back(std::move(proc));

  // Standard layout: code, heap (grown by mmap), stack, and a kernel half
  // (kernel stacks / slab pages this process will fault in on demand).
  raw->vmas()[GuestProcess::kCodeBase] = Vma{GuestProcess::kCodeBase, 64ull << 20, true};
  raw->vmas()[GuestProcess::kStackBase] = Vma{GuestProcess::kStackBase, 16ull << 20, true};
  raw->vmas()[GuestProcess::kKernelBase] = Vma{GuestProcess::kKernelBase, 64ull << 20, true};

  mem_->on_process_created(*raw);
  co_await mem_->activate_process(vcpu, *raw, /*kernel_ring=*/false);

  // Fault in the resident footprint: code + stack pages.
  for (int i = 0; i < initial_pages; ++i) {
    const bool code = i % 2 == 0;
    const std::uint64_t base = code ? GuestProcess::kCodeBase : GuestProcess::kStackBase;
    co_await touch(vcpu, *raw, base + static_cast<std::uint64_t>(i / 2) * kPageSize, !code);
  }
  co_return raw;
}

Task<void> GuestKernel::touch(Vcpu& vcpu, GuestProcess& proc, std::uint64_t gva, bool write) {
  if (proc.oom_killed()) {
    co_return;
  }
  ++vcpu.progress;
  co_await mem_->access(vcpu, proc, *this, gva, write ? AccessType::kWrite : AccessType::kRead,
                        /*user_mode=*/true);
}

Task<void> GuestKernel::touch_kernel(Vcpu& vcpu, GuestProcess& proc, std::uint64_t offset) {
  if (proc.oom_killed()) {
    co_return;
  }
  ++vcpu.progress;
  co_await mem_->access(vcpu, proc, *this, GuestProcess::kKernelBase + offset,
                        AccessType::kWrite, /*user_mode=*/false);
}

Task<void> GuestKernel::handle_page_fault(Vcpu& vcpu, GuestProcess& proc,
                                          const PageFaultInfo& fault) {
  if (proc.oom_killed()) {
    co_return;  // its VMAs are gone; the faulting access is abandoned
  }
  const Vma* vma = proc.find_vma(fault.gva);
  if (vma == nullptr) {
    throw std::logic_error("guest segfault at gva " + std::to_string(fault.gva) +
                           " (simulation bug: workload touched unmapped memory)");
  }
  counters_->add(Counter::kGuestPageFault);
  co_await sim_->delay(costs_->guest_pf_handler);

  if (fault.protection) {
    co_await break_cow(vcpu, proc, fault.gva);
    co_return;
  }
  co_await populate_page(vcpu, proc, fault.gva, vma->writable);
}

Task<std::optional<std::uint64_t>> GuestKernel::alloc_user_frame(Vcpu& vcpu,
                                                                 GuestProcess& proc) {
  for (;;) {
    // A short burst absorbs transient injected pressure; only sustained
    // refusal reaches the OOM killer.
    for (int i = 0; i < 3; ++i) {
      if (std::optional<std::uint64_t> frame = gpa_frames_->allocate()) {
        co_return frame;
      }
    }
    if (!co_await oom_kill_largest(vcpu)) {
      // Nothing left worth killing; the requester itself is the last victim.
      co_await oom_kill_process(vcpu, proc);
      co_return std::nullopt;
    }
    if (proc.oom_killed()) {
      co_return std::nullopt;  // the requester was the largest resident
    }
  }
}

Task<void> GuestKernel::populate_page(Vcpu& vcpu, GuestProcess& proc, std::uint64_t gva,
                                      bool writable) {
  const std::uint64_t page = page_base(gva);
  const std::optional<std::uint64_t> frame = co_await alloc_user_frame(vcpu, proc);
  if (!frame.has_value()) {
    co_return;
  }
  co_await sim_->delay(costs_->page_zero);
  if (proc.oom_killed()) {
    // Killed while zeroing (another vCPU's OOM pass): its teardown already
    // swept data_frames, so this frame must go straight back.
    release_frame(*frame);
    co_return;
  }
  proc.note_data_frame(page, *frame);
  PteFlags flags = PteFlags::rw_user();
  flags.writable = writable;
  co_await mem_->gpt_map(vcpu, proc, page, *frame, flags);
}

Task<void> GuestKernel::break_cow(Vcpu& vcpu, GuestProcess& proc, std::uint64_t gva) {
  const std::uint64_t page = page_base(gva);
  Pte* pte = proc.gpt().find_pte(page);
  if (pte == nullptr || !pte->present()) {
    // Raced with teardown; treat as fresh population.
    co_await populate_page(vcpu, proc, gva, true);
    co_return;
  }
  counters_->add(Counter::kCowBreak);
  const std::uint64_t old_frame = pte->frame_number();
  if (cow_refs(old_frame) > 1) {
    // Shared: copy into a private frame.
    const std::optional<std::uint64_t> new_frame = co_await alloc_user_frame(vcpu, proc);
    if (!new_frame.has_value()) {
      co_return;
    }
    co_await sim_->delay(costs_->page_copy);
    if (proc.oom_killed()) {
      release_frame(*new_frame);
      co_return;
    }
    release_frame(old_frame);
    proc.note_data_frame(page, *new_frame);
    co_await mem_->gpt_map(vcpu, proc, page, *new_frame, PteFlags::rw_user());
    co_return;
  }
  // Sole owner left: just restore write access in place.
  cow_refs_.erase(old_frame);
  co_await mem_->gpt_protect(vcpu, proc, page, /*writable=*/true, /*mark_cow=*/false);
}

Task<GuestProcess*> GuestKernel::sys_fork(Vcpu& vcpu, GuestProcess& parent) {
  if (parent.oom_killed()) {
    co_return nullptr;
  }
  ++vcpu.progress;
  co_await cpu_->syscall_enter(vcpu, parent);
  counters_->add(Counter::kProcessForked);
  co_await sim_->delay(costs_->fork_base);

  auto child_owner = std::make_unique<GuestProcess>(next_pid_++, *gpa_frames_);
  GuestProcess* child = child_owner.get();
  processes_.push_back(std::move(child_owner));
  child->vmas() = parent.vmas();
  mem_->on_process_created(*child);

  // COW pass: write-protect every present parent user page (a trapped GPT
  // store under shadow paging) and alias it read-only into the child. The
  // child's fresh page table is not yet registered with any shadow scheme,
  // so its stores are plain memory writes.
  //
  // Iterate a snapshot, not the live map: this loop suspends, and an OOM
  // kill of the parent meanwhile (from another vCPU) moves and clears
  // data_frames() in teardown_address_space, which would invalidate a live
  // iterator. The oom_killed check stops us before aliasing a frame the
  // teardown already returned to the allocator.
  const std::vector<std::pair<std::uint64_t, std::uint64_t>> parent_frames(
      parent.data_frames().begin(), parent.data_frames().end());
  for (const auto& [gva, frame] : parent_frames) {
    if (parent.oom_killed()) {
      break;  // teardown owns the remaining frames now
    }
    if (gva >= GuestProcess::kKernelBase) {
      continue;  // the kernel half is not inherited
    }
    Pte* pte = parent.gpt().find_pte(gva);
    if (pte == nullptr || !pte->present()) {
      continue;
    }
    if (cow_refs_.find(frame) == cow_refs_.end()) {
      cow_refs_[frame] = 1;
    }
    ++cow_refs_[frame];
    if (pte->writable()) {
      co_await mem_->gpt_protect(vcpu, parent, gva, /*writable=*/false, /*mark_cow=*/true);
    }
    PteFlags child_flags = PteFlags::ro_user();
    child_flags.cow = true;
    child->gpt().map(gva, frame, child_flags);
    child->note_data_frame(gva, frame);
    {
      // Page-reference bookkeeping goes through the zone lock.
      ScopedResource zone = co_await zone_lock_.scoped();
      co_await sim_->delay(costs_->guest_pte_store + 25);
    }
  }

  co_await cpu_->syscall_exit(vcpu, parent);
  co_return child;
}

Task<void> GuestKernel::teardown_address_space(Vcpu& vcpu, GuestProcess& proc) {
  // Take the frame map by value up front: this coroutine suspends repeatedly
  // below, and an OOM kill running meanwhile (from another vCPU) must not
  // walk or mutate the same map mid-iteration.
  const std::map<std::uint64_t, std::uint64_t> frames = std::move(proc.data_frames());
  proc.data_frames().clear();
  proc.vmas().clear();
  std::vector<std::uint64_t> gvas;
  gvas.reserve(frames.size());
  for (const auto& [gva, frame] : frames) {
    gvas.push_back(gva);
  }
  co_await mem_->gpt_bulk_teardown(vcpu, proc, gvas);
  for (const auto& [gva, frame] : frames) {
    // Bulk frees return pages to the buddy allocator under the zone lock.
    ScopedResource zone = co_await zone_lock_.scoped();
    release_frame(frame);
    co_await sim_->delay(costs_->guest_pte_store + 25);
  }
}

Task<void> GuestKernel::oom_kill_process(Vcpu& vcpu, GuestProcess& victim) {
  if (victim.oom_killed()) {
    co_return;
  }
  victim.set_oom_killed();
  counters_->add(Counter::kGuestOomKill);
  if (flight::FlightRecorder* flight = sim_->flight()) {
    flight->record(flight::EventKind::kOomKill, victim.pid(), victim.data_frames().size());
  }
  sim_->add_diagnostic("guest OOM: killed pid " + std::to_string(victim.pid()) + " (" +
                       std::to_string(victim.data_frames().size()) + " data frames) at t=" +
                       std::to_string(sim_->now()));
  kernel_allocs_.erase(victim.pid());
  // The process object stays in processes_ — suspended coroutines still
  // reference it — but its frames go back and every entry point no-ops.
  co_await teardown_address_space(vcpu, victim);
}

Task<bool> GuestKernel::oom_kill_largest(Vcpu& vcpu) {
  GuestProcess* victim = nullptr;
  for (const auto& proc : processes_) {
    if (proc->oom_killed()) {
      continue;
    }
    if (victim == nullptr || proc->data_frames().size() > victim->data_frames().size()) {
      victim = proc.get();
    }
  }
  if (victim == nullptr || victim->data_frames().empty()) {
    co_return false;  // killing more would free nothing
  }
  co_await oom_kill_process(vcpu, *victim);
  co_return true;
}

Task<void> GuestKernel::sys_exec(Vcpu& vcpu, GuestProcess& proc, int fresh_pages) {
  if (proc.oom_killed()) {
    co_return;
  }
  ++vcpu.progress;
  co_await cpu_->syscall_enter(vcpu, proc);
  counters_->add(Counter::kProcessExeced);
  co_await sim_->delay(costs_->exec_base);

  co_await teardown_address_space(vcpu, proc);
  proc.vmas()[GuestProcess::kCodeBase] = Vma{GuestProcess::kCodeBase, 64ull << 20, true};
  proc.vmas()[GuestProcess::kStackBase] = Vma{GuestProcess::kStackBase, 16ull << 20, true};
  proc.vmas()[GuestProcess::kKernelBase] = Vma{GuestProcess::kKernelBase, 64ull << 20, true};

  for (int i = 0; i < fresh_pages; ++i) {
    const bool code = i % 2 == 0;
    const std::uint64_t base = code ? GuestProcess::kCodeBase : GuestProcess::kStackBase;
    co_await touch(vcpu, proc, base + static_cast<std::uint64_t>(i / 2) * kPageSize, !code);
  }
  co_await cpu_->syscall_exit(vcpu, proc);
}

Task<void> GuestKernel::sys_exit(Vcpu& vcpu, GuestProcess& proc) {
  if (proc.oom_killed()) {
    co_return;  // already torn down; the object must outlive its references
  }
  ++vcpu.progress;
  co_await cpu_->syscall_enter(vcpu, proc);
  co_await teardown_address_space(vcpu, proc);
  co_await mem_->on_process_destroyed(vcpu, proc);
  const std::uint64_t pid = proc.pid();
  kernel_allocs_.erase(pid);
  std::erase_if(processes_,
                [pid](const std::unique_ptr<GuestProcess>& p) { return p->pid() == pid; });
  // No syscall return: the process is gone; the scheduler switches away.
}

Task<std::uint64_t> GuestKernel::sys_mmap(Vcpu& vcpu, GuestProcess& proc, std::uint64_t bytes) {
  if (proc.oom_killed()) {
    co_return 0;
  }
  ++vcpu.progress;
  co_await cpu_->syscall_enter(vcpu, proc);
  counters_->add(Counter::kMmapCall);
  co_await sim_->delay(costs_->mmap_body);
  const std::uint64_t base = proc.add_vma(bytes, true);
  co_await cpu_->syscall_exit(vcpu, proc);
  co_return base;
}

Task<void> GuestKernel::sys_munmap(Vcpu& vcpu, GuestProcess& proc, std::uint64_t start) {
  if (proc.oom_killed()) {
    co_return;
  }
  ++vcpu.progress;
  co_await cpu_->syscall_enter(vcpu, proc);
  counters_->add(Counter::kMunmapCall);
  co_await sim_->delay(costs_->munmap_body);

  if (proc.oom_killed()) {
    co_return;  // killed while entering: teardown already swept the VMAs
  }
  auto vma_it = proc.vmas().find(start);
  if (vma_it == proc.vmas().end()) {
    throw std::logic_error("munmap of unknown vma");
  }
  const Vma vma = vma_it->second;
  // Detach the region from the live map before the first suspension: an OOM
  // kill running meanwhile moves and clears data_frames(), which would
  // invalidate an iterator held across co_await. Once detached, these frames
  // are invisible to the teardown sweep and ours to release unconditionally.
  auto& frames = proc.data_frames();
  std::vector<std::pair<std::uint64_t, std::uint64_t>> region;
  for (auto it = frames.lower_bound(vma.start); it != frames.end() && it->first < vma.end();) {
    region.push_back(*it);
    it = frames.erase(it);
  }
  proc.remove_vma(start);
  for (const auto& [gva, frame] : region) {
    co_await mem_->gpt_unmap(vcpu, proc, gva);
    release_frame(frame);
    co_await sim_->delay(costs_->guest_pte_store);
  }
  co_await cpu_->syscall_exit(vcpu, proc);
}

Task<void> GuestKernel::sys_getpid(Vcpu& vcpu, GuestProcess& proc) {
  if (proc.oom_killed()) {
    co_return;
  }
  ++vcpu.progress;
  counters_->add(Counter::kSyscall);
  co_await cpu_->syscall_enter(vcpu, proc);
  co_await sim_->delay(costs_->guest_syscall_body_getpid);
  co_await cpu_->syscall_exit(vcpu, proc);
}

Task<void> GuestKernel::sys_simple(Vcpu& vcpu, GuestProcess& proc, std::uint64_t body_ns,
                                   int kernel_touches) {
  if (proc.oom_killed()) {
    co_return;
  }
  ++vcpu.progress;
  counters_->add(Counter::kSyscall);
  co_await cpu_->syscall_enter(vcpu, proc);
  co_await sim_->delay(body_ns);
  for (int i = 0; i < kernel_touches; ++i) {
    co_await touch_kernel(vcpu, proc, static_cast<std::uint64_t>(i) * kPageSize);
  }
  co_await cpu_->syscall_exit(vcpu, proc);
}

Task<void> GuestKernel::sys_file_op(Vcpu& vcpu, GuestProcess& proc, std::uint64_t body_ns,
                                    int fresh_pages, int free_pages) {
  if (proc.oom_killed()) {
    co_return;
  }
  ++vcpu.progress;
  counters_->add(Counter::kSyscall);
  co_await cpu_->syscall_enter(vcpu, proc);
  co_await sim_->delay(body_ns);
  std::deque<std::uint64_t>& allocs = kernel_allocs_[proc.pid()];
  for (int i = 0; i < fresh_pages; ++i) {
    const std::uint64_t offset = proc.take_kernel_alloc_offset();
    co_await touch_kernel(vcpu, proc, offset);
    allocs.push_back(GuestProcess::kKernelBase + offset);
  }
  for (int i = 0; i < free_pages && !allocs.empty(); ++i) {
    const std::uint64_t gva = allocs.front();
    allocs.pop_front();
    auto it = proc.data_frames().find(gva);
    if (it != proc.data_frames().end()) {
      co_await mem_->gpt_unmap(vcpu, proc, gva);
      release_frame(it->second);
      proc.data_frames().erase(it);
    }
  }
  co_await cpu_->syscall_exit(vcpu, proc);
}

Task<void> GuestKernel::deliver_signal(Vcpu& vcpu, GuestProcess& proc) {
  if (proc.oom_killed()) {
    co_return;
  }
  ++vcpu.progress;
  // kill() syscall, then the kernel-to-user upcall and sigreturn — all
  // intra-guest transitions (signals never involve the hypervisor).
  co_await cpu_->syscall_enter(vcpu, proc);
  co_await sim_->delay(500);  // signal bookkeeping + frame setup
  co_await cpu_->syscall_exit(vcpu, proc);
  // Handler upcall + sigreturn.
  co_await cpu_->syscall_enter(vcpu, proc);
  co_await sim_->delay(150);
  co_await cpu_->syscall_exit(vcpu, proc);
}

Task<void> GuestKernel::do_io(Vcpu& vcpu, GuestProcess& proc, IoDevice& device,
                              std::uint64_t bytes) {
  if (proc.oom_killed()) {
    co_return;
  }
  ++vcpu.progress;
  obs::SpanScope span(sim_->spans(), obs::Phase::kIo, bytes);
  counters_->add(Counter::kIoRequest);
  co_await cpu_->syscall_enter(vcpu, proc);
  // Doorbell kick: a privileged exit to the hypervisor owning the device.
  co_await cpu_->privileged_op(vcpu, PrivOp::kIoKick);
  device.note_request();
  {
    ScopedResource slot = co_await device.queue().scoped();
    co_await sim_->delay(device.service_time(bytes));
  }
  // Completion interrupt.
  co_await cpu_->interrupt(vcpu);
  co_await cpu_->syscall_exit(vcpu, proc);
}

}  // namespace pvm
