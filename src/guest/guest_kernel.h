// The paravirtualized guest kernel of one innermost VM.
//
// Implements the kernel-side semantics every workload exercises — demand
// paging, COW fork, exec, mmap/munmap, the syscall surface, and virtio I/O —
// in a deployment-agnostic way: every privileged operation and every page
// table mutation goes through the CpuBackend/MemoryBackend of the active
// scheme, which is where the schemes' world-switch protocols (and therefore
// their costs) live.

#ifndef PVM_SRC_GUEST_GUEST_KERNEL_H_
#define PVM_SRC_GUEST_GUEST_KERNEL_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/arch/cost_model.h"
#include "src/guest/backend_iface.h"
#include "src/guest/io_device.h"
#include "src/guest/process.h"
#include "src/guest/vcpu.h"
#include "src/metrics/counters.h"
#include "src/sim/resource.h"
#include "src/sim/simulation.h"
#include "src/sim/task.h"

namespace pvm {

class GuestKernel {
 public:
  GuestKernel(Simulation& sim, const CostModel& costs, CounterSet& counters,
              FrameAllocator& gpa_frames, MemoryBackend& mem, CpuBackend& cpu, bool kpti);

  MemoryBackend& mem() { return *mem_; }
  CpuBackend& cpu() { return *cpu_; }
  bool kpti() const { return kpti_; }
  FrameAllocator& gpa_frames() { return *gpa_frames_; }

  // ---- Process lifecycle ----

  // Creates a process with the standard VMAs (code/heap/stack/kernel),
  // activates it on `vcpu`, and pre-touches `initial_pages` pages of code and
  // stack (its resident footprint).
  Task<GuestProcess*> create_init_process(Vcpu& vcpu, int initial_pages);

  // fork(): child address space built COW — every present parent user page
  // is write-protected in the parent (a trapped GPT store under shadow
  // paging) and aliased read-only into the child.
  Task<GuestProcess*> sys_fork(Vcpu& vcpu, GuestProcess& parent);

  // exec(): drop the whole user address space, build a fresh one, touch
  // `fresh_pages` of the new image.
  Task<void> sys_exec(Vcpu& vcpu, GuestProcess& proc, int fresh_pages);

  // exit(): tear down the address space and release all frames.
  Task<void> sys_exit(Vcpu& vcpu, GuestProcess& proc);

  // ---- Memory ----

  // One user-mode data access; demand-pages and breaks COW as needed.
  Task<void> touch(Vcpu& vcpu, GuestProcess& proc, std::uint64_t gva, bool write);

  // One kernel-mode data access (kernel half of the address space).
  Task<void> touch_kernel(Vcpu& vcpu, GuestProcess& proc, std::uint64_t offset);

  // mmap(): syscall reserving `bytes` of lazily-populated address space;
  // returns the base address.
  Task<std::uint64_t> sys_mmap(Vcpu& vcpu, GuestProcess& proc, std::uint64_t bytes);

  // munmap(): syscall dropping the VMA at `start`, clearing PTEs and
  // releasing frames.
  Task<void> sys_munmap(Vcpu& vcpu, GuestProcess& proc, std::uint64_t start);

  // The guest page-fault handler — invoked *by the memory backends* once
  // their protocol has delivered the fault to the guest kernel.
  Task<void> handle_page_fault(Vcpu& vcpu, GuestProcess& proc, const PageFaultInfo& fault);

  // ---- Syscalls ----

  // getpid()-class null syscall (Table 2).
  Task<void> sys_getpid(Vcpu& vcpu, GuestProcess& proc);

  // Generic syscall with `body_ns` of kernel work and `kernel_touches`
  // kernel-memory accesses (stat, open/close, select, ...).
  Task<void> sys_simple(Vcpu& vcpu, GuestProcess& proc, std::uint64_t body_ns,
                        int kernel_touches);

  // File-system style syscall: `body_ns` of kernel work, `fresh_pages`
  // newly-allocated kernel pages (page cache / inode slabs — each one a
  // demand fault), and `free_pages` previously-allocated kernel pages
  // released back (unlink / eviction).
  Task<void> sys_file_op(Vcpu& vcpu, GuestProcess& proc, std::uint64_t body_ns, int fresh_pages,
                         int free_pages);

  // Signal delivery: kernel-to-user upcall plus sigreturn.
  Task<void> deliver_signal(Vcpu& vcpu, GuestProcess& proc);

  // ---- I/O ----
  Task<void> do_io(Vcpu& vcpu, GuestProcess& proc, IoDevice& device, std::uint64_t bytes);

  // ---- OOM handling ----

  // Marks `victim` killed, tears down its address space, and returns its
  // frames. Idempotent. Called on guest-internal allocation failure, by
  // backends on L1 backing exhaustion (fill_spt returning false), and by the
  // watchdog's kill escalation.
  Task<void> oom_kill_process(Vcpu& vcpu, GuestProcess& victim);

  // Linux-style victim selection: kills the not-yet-killed process with the
  // largest resident set. Returns false when no process holds any frame
  // (killing more would free nothing).
  Task<bool> oom_kill_largest(Vcpu& vcpu);

  // Frame release honouring COW sharing.
  void release_frame(std::uint64_t frame);
  void note_cow_share(std::uint64_t frame);
  int cow_refs(std::uint64_t frame) const;

  const std::vector<std::unique_ptr<GuestProcess>>& processes() const { return processes_; }
  GuestProcess* process_by_pid(std::uint64_t pid);

 private:
  Task<void> populate_page(Vcpu& vcpu, GuestProcess& proc, std::uint64_t gva, bool writable);
  Task<void> break_cow(Vcpu& vcpu, GuestProcess& proc, std::uint64_t gva);
  Task<void> teardown_address_space(Vcpu& vcpu, GuestProcess& proc);

  // Allocates a user frame, absorbing transient (injected) allocator
  // pressure with a short retry burst and escalating to the OOM killer on
  // sustained exhaustion. nullopt means `proc` itself was killed.
  Task<std::optional<std::uint64_t>> alloc_user_frame(Vcpu& vcpu, GuestProcess& proc);

  Simulation* sim_;
  const CostModel* costs_;
  CounterSet* counters_;
  FrameAllocator* gpa_frames_;
  MemoryBackend* mem_;
  CpuBackend* cpu_;
  bool kpti_;

  // The guest kernel's buddy/zone lock: bulk page allocation and release
  // (fork's COW pass, exit/exec teardown, large munmaps) serialize here, as
  // in Linux. Single-page demand faults use per-CPU lists and skip it —
  // which is why Fig. 4/10's EPT line stays flat while Table 3's 32-process
  // fork does not.
  Resource zone_lock_;

  std::uint64_t next_pid_ = 1;
  std::vector<std::unique_ptr<GuestProcess>> processes_;
  std::unordered_map<std::uint64_t, int> cow_refs_;
  // Outstanding fresh kernel pages per process (fifo), for sys_file_op.
  std::unordered_map<std::uint64_t, std::deque<std::uint64_t>> kernel_allocs_;
};

}  // namespace pvm

#endif  // PVM_SRC_GUEST_GUEST_KERNEL_H_
