// Deployment-specific backend interfaces.
//
// A MemoryBackend implements one memory-virtualization scheme (EPT-only,
// kvm-spt, SPT-on-EPT, EPT-on-EPT, PVM-on-EPT); a CpuBackend implements the
// matching CPU-virtualization scheme (hardware VMX or PVM's switcher). The
// guest kernel is scheme-agnostic: it drives all address-space mutations and
// privileged operations through these interfaces, and the backends run the
// world-switch protocols of §2.2/§3.3.

#ifndef PVM_SRC_GUEST_BACKEND_IFACE_H_
#define PVM_SRC_GUEST_BACKEND_IFACE_H_

#include <cstdint>
#include <string_view>
#include <vector>

#include "src/arch/page_table.h"
#include "src/arch/priv_op.h"
#include "src/guest/process.h"
#include "src/guest/vcpu.h"
#include "src/mmu/fault.h"
#include "src/sim/task.h"

namespace pvm {

class GuestKernel;

class MemoryBackend {
 public:
  virtual ~MemoryBackend() = default;

  virtual std::string_view name() const = 0;

  // Process lifecycle hooks (shadow state follows the process).
  virtual void on_process_created(GuestProcess& proc) = 0;
  virtual Task<void> on_process_destroyed(Vcpu& vcpu, GuestProcess& proc) = 0;

  // One data access (load/store/fetch) performed by guest code at `gva`.
  // Runs the full pipeline: TLB probe, hardware walk, and — on faults — the
  // deployment's complete fault-handling protocol, re-entering `kernel` for
  // guest-level handling (demand paging, COW). Returns once the access has
  // retired.
  virtual Task<void> access(Vcpu& vcpu, GuestProcess& proc, GuestKernel& kernel,
                            std::uint64_t gva, AccessType access, bool user_mode) = 0;

  // GPT mutation channels used by the guest kernel. Implementations make
  // the store effective in the process's GPT *and* run whatever trap
  // protocol the scheme requires (write-protect traps under shadow paging;
  // nothing under EPT schemes).
  virtual Task<void> gpt_map(Vcpu& vcpu, GuestProcess& proc, std::uint64_t gva,
                             std::uint64_t gpa_frame, PteFlags flags) = 0;
  virtual Task<void> gpt_unmap(Vcpu& vcpu, GuestProcess& proc, std::uint64_t gva) = 0;
  // Changes the write permission of an existing leaf; `mark_cow` tags the
  // entry copy-on-write (fork's write-protect pass sets both).
  virtual Task<void> gpt_protect(Vcpu& vcpu, GuestProcess& proc, std::uint64_t gva,
                                 bool writable, bool mark_cow) = 0;

  // Tears down the whole user address space at process exit/exec. The
  // default loops gpt_unmap (per-store traps under shadow paging); PVM
  // overrides it with a single bulk-zap hypercall — one of the
  // "user-specific optimizations" its paravirtual interface enables.
  virtual Task<void> gpt_bulk_teardown(Vcpu& vcpu, GuestProcess& proc,
                                       const std::vector<std::uint64_t>& gvas);

  // Installs `proc`'s address space on `vcpu` (CR3 write + TLB policy).
  virtual Task<void> activate_process(Vcpu& vcpu, GuestProcess& proc, bool kernel_ring) = 0;
};

class CpuBackend {
 public:
  virtual ~CpuBackend() = default;

  virtual std::string_view name() const = 0;

  // Syscall entry (guest user -> guest kernel) and return.
  virtual Task<void> syscall_enter(Vcpu& vcpu, GuestProcess& proc) = 0;
  virtual Task<void> syscall_exit(Vcpu& vcpu, GuestProcess& proc) = 0;

  // A privileged operation issued by the guest kernel; round trip back to
  // the guest (the Table 1 microbenchmark surface).
  virtual Task<void> privileged_op(Vcpu& vcpu, PrivOp op) = 0;

  // A (trapped) exception raised by guest user code, handled by the guest
  // kernel, returning to user (Table 1 "Exception").
  virtual Task<void> exception_roundtrip(Vcpu& vcpu) = 0;

  // An external interrupt arriving while this vCPU runs guest code.
  virtual Task<void> interrupt(Vcpu& vcpu) = 0;

  // HLT: the guest kernel idles until the next event (§4.3: PVM handles HALT
  // via hypercall without leaving the L1 VM).
  virtual Task<void> halt(Vcpu& vcpu) = 0;
};

}  // namespace pvm

#endif  // PVM_SRC_GUEST_BACKEND_IFACE_H_
