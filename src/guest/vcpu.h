// A virtual CPU of an innermost guest VM.
//
// Each guest process in the benchmarks is pinned to its own vCPU (the paper's
// testbed has 104 hardware threads; its concurrency sweeps stay below that
// except Fig. 12, where oversubscription is modelled separately). The vCPU
// carries the architectural state plus whichever hypervisor-side context the
// active deployment needs: the PVM switcher state or the nested VMCS triple.

#ifndef PVM_SRC_GUEST_VCPU_H_
#define PVM_SRC_GUEST_VCPU_H_

#include <cstdint>

#include "src/arch/cpu_state.h"
#include "src/arch/tlb.h"
#include "src/core/switcher.h"
#include "src/hv/host_hypervisor.h"

namespace pvm {

struct Vcpu {
  explicit Vcpu(int id_in) : id(id_in) {}

  int id;
  VcpuState state;

  // Monotonic work counter, bumped by the guest kernel on every syscall /
  // memory access it services. The per-vCPU watchdog samples it: a vCPU
  // whose counter stops moving is wedged.
  std::uint64_t progress = 0;

  // Physical-CPU TLB backing this vCPU (1:1 pinning).
  Tlb tlb;

  // PVM deployments: the per-CPU switcher state block.
  SwitcherState switcher_state;

  // Hardware-assisted nested deployments: VMCS01/12/02.
  HostHypervisor::NestedVcpu nested;
};

}  // namespace pvm

#endif  // PVM_SRC_GUEST_VCPU_H_
