// Paravirtual I/O device (virtio-blk / vhost-net stand-in).
//
// All deployments reuse the same device path — mirroring the paper, where PVM
// relies on KVM's virtio stack and therefore shows near-identical I/O
// performance (Table 4, §4.2). A request costs: one doorbell kick (a
// privileged exit to the hypervisor), queued service time on the device, and
// a completion interrupt.

#ifndef PVM_SRC_GUEST_IO_DEVICE_H_
#define PVM_SRC_GUEST_IO_DEVICE_H_

#include <cstdint>
#include <string>

#include "src/arch/cost_model.h"
#include "src/sim/resource.h"
#include "src/sim/simulation.h"

namespace pvm {

class IoDevice {
 public:
  IoDevice(Simulation& sim, const CostModel& costs, std::string name, std::uint32_t queue_depth = 4)
      : sim_(&sim), costs_(&costs), queue_(sim, std::move(name), queue_depth) {}

  // Service time once dequeued.
  SimTime service_time(std::uint64_t bytes) const {
    return costs_->io_request_service + (bytes / 1024) * 200;
  }

  Resource& queue() { return queue_; }
  std::uint64_t requests() const { return requests_; }
  void note_request() { ++requests_; }

 private:
  Simulation* sim_;
  const CostModel* costs_;
  Resource queue_;
  std::uint64_t requests_ = 0;
};

}  // namespace pvm

#endif  // PVM_SRC_GUEST_IO_DEVICE_H_
