#include "src/guest/backend_iface.h"

namespace pvm {

Task<void> MemoryBackend::gpt_bulk_teardown(Vcpu& vcpu, GuestProcess& proc,
                                            const std::vector<std::uint64_t>& gvas) {
  // Default: per-page unmap, paying whatever trap protocol the scheme
  // imposes on each store.
  for (const std::uint64_t gva : gvas) {
    co_await gpt_unmap(vcpu, proc, gva);
  }
}

}  // namespace pvm
