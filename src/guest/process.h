// A process inside the innermost guest.
//
// Owns the guest page table (GPT2: GVA -> GPA_L2, with table pages allocated
// from the VM's guest-physical space) and a VMA list driving demand paging,
// COW fork, and exec. All GPT mutations flow through the deployment's
// MemoryBackend so shadow configurations see the write-protect traps.

#ifndef PVM_SRC_GUEST_PROCESS_H_
#define PVM_SRC_GUEST_PROCESS_H_

#include <cstdint>
#include <map>
#include <string>

#include "src/arch/page_table.h"
#include "src/arch/physical_memory.h"

namespace pvm {

struct Vma {
  std::uint64_t start = 0;
  std::uint64_t length = 0;
  bool writable = true;

  std::uint64_t end() const { return start + length; }
  bool contains(std::uint64_t gva) const { return gva >= start && gva < end(); }
};

class GuestProcess {
 public:
  // User-half VA layout constants for synthetic address spaces.
  static constexpr std::uint64_t kCodeBase = 0x0000000000400000ull;
  static constexpr std::uint64_t kHeapBase = 0x0000100000000000ull;
  static constexpr std::uint64_t kStackBase = 0x00007f0000000000ull;
  static constexpr std::uint64_t kKernelBase = 0xffff800000000000ull;

  GuestProcess(std::uint64_t pid, FrameAllocator& gpa_frames)
      : pid_(pid),
        gpa_frames_(&gpa_frames),
        gpt_("gpt.pid" + std::to_string(pid), &gpa_frames) {}

  std::uint64_t pid() const { return pid_; }
  PageTable& gpt() { return gpt_; }
  const PageTable& gpt() const { return gpt_; }
  FrameAllocator& gpa_frames() { return *gpa_frames_; }

  std::map<std::uint64_t, Vma>& vmas() { return vmas_; }
  const std::map<std::uint64_t, Vma>& vmas() const { return vmas_; }

  // Finds the VMA covering `gva`, or nullptr (a fault outside every VMA is a
  // guest segfault — the workloads never trigger one, and tests assert it).
  const Vma* find_vma(std::uint64_t gva) const {
    auto it = vmas_.upper_bound(gva);
    if (it == vmas_.begin()) {
      return nullptr;
    }
    --it;
    return it->second.contains(gva) ? &it->second : nullptr;
  }

  // Reserves `length` bytes of address space at the next free heap address.
  std::uint64_t add_vma(std::uint64_t length, bool writable) {
    const std::uint64_t start = next_map_va_;
    next_map_va_ += (length + kPageMask) & ~kPageMask;
    vmas_[start] = Vma{start, length, writable};
    return start;
  }

  bool remove_vma(std::uint64_t start) { return vmas_.erase(start) > 0; }

  // Per-process PCIDs as a guest kernel would assign them (user/kernel halves
  // under KPTI).
  std::uint16_t user_pcid() const { return static_cast<std::uint16_t>((pid_ * 2 + 1) % 2048); }
  std::uint16_t kernel_pcid() const { return static_cast<std::uint16_t>((pid_ * 2) % 2048); }

  // Bookkeeping for frames the process owns (data pages), so exit/exec can
  // return them to the VM.
  void note_data_frame(std::uint64_t gva, std::uint64_t frame) { data_frames_[gva] = frame; }
  std::map<std::uint64_t, std::uint64_t>& data_frames() { return data_frames_; }

  // Set when the guest OOM killer (or the watchdog's kill escalation) chose
  // this process. The object stays alive — suspended coroutines may still
  // hold references — but every kernel entry point and backend access loop
  // no-ops from then on.
  bool oom_killed() const { return oom_killed_; }
  void set_oom_killed() { oom_killed_ = true; }

  // Bump pointer for fresh kernel-page allocations (page cache, inodes):
  // file-op workloads fault in previously-untouched kernel pages through it.
  std::uint64_t take_kernel_alloc_offset() {
    const std::uint64_t offset = kernel_alloc_offset_;
    kernel_alloc_offset_ += kPageSize;
    return offset;
  }

 private:
  std::uint64_t pid_;
  FrameAllocator* gpa_frames_;
  PageTable gpt_;
  std::map<std::uint64_t, Vma> vmas_;
  std::map<std::uint64_t, std::uint64_t> data_frames_;
  std::uint64_t next_map_va_ = kHeapBase;
  std::uint64_t kernel_alloc_offset_ = 1ull << 20;  // above the fixed kernel touches
  bool oom_killed_ = false;
};

}  // namespace pvm

#endif  // PVM_SRC_GUEST_PROCESS_H_
