#include "src/sim/event_queue.h"

#include <bit>
#include <limits>

namespace pvm {

namespace {

constexpr std::size_t kMaxBuckets = std::size_t{1} << 16;
constexpr unsigned kMaxShift = 62;

unsigned shift_for_gap(std::uint64_t gap) {
  if (gap < 2) {
    return 0;
  }
  const unsigned shift = std::bit_width(gap) - 1;
  return shift > kMaxShift ? kMaxShift : shift;
}

}  // namespace

CalendarQueue::CalendarQueue()
    : buckets_(kMinBuckets), bucket_mask_(kMinBuckets - 1), shift_(10) {}

void EventBuf::grow(std::size_t need) {
  std::size_t cap = cap_ == 0 ? 8 : 2 * static_cast<std::size_t>(cap_);
  while (cap < len_ + need) {
    cap *= 2;
  }
  SimEvent* data = new SimEvent[cap];
  if (len_ != 0) {
    std::memcpy(data, data_, len_ * sizeof(SimEvent));
  }
  delete[] data_;
  data_ = data;
  cap_ = static_cast<std::uint32_t>(cap);
}

void CalendarQueue::bucket_push_slow(Bucket& bucket, const SimEvent& event) {
  if (bucket.heap_mode) {
    bucket.slots.push_back(event);
    std::push_heap(bucket.slots.begin(), bucket.slots.end(), Later{});
  } else if (earlier(event, bucket.slots[bucket.head])) {
    bucket_push_front(bucket, event);            // LIFO ties
  } else {
    bucket_insert_middle(bucket, event);         // random ties
  }
}

void CalendarQueue::bucket_push_front(Bucket& bucket, const SimEvent& event) {
  if (bucket.head == 0) {
    // Grow a front gap proportional to the live run, deque-style, so a
    // same-timestamp LIFO burst prepends in amortized O(1).
    const std::size_t gap = std::max<std::size_t>(8, bucket.live());
    bucket.slots.open_front_gap(gap);
    bucket.head = gap;
  }
  bucket.slots[--bucket.head] = event;
}

void CalendarQueue::bucket_insert_middle(Bucket& bucket, const SimEvent& event) {
  SimEvent* it = std::upper_bound(bucket.slots.begin() + bucket.head,
                                  bucket.slots.end(), event, earlier);
  bucket.slots.insert_at(static_cast<std::size_t>(it - bucket.slots.begin()), event);
  // Only middle inserts (random-tie floods) pay O(live) memmove; append and
  // prepend are O(1) at any size, so the heap-mode escape hatch arms here
  // and nowhere else.
  if (bucket.live() > kHeapBucket) {
    bucket_to_heap(bucket);
  }
}

void CalendarQueue::bucket_to_heap(Bucket& bucket) {
  // A sorted ascending run is already a valid min-heap under Later{}; just
  // drop the front gap and flip the flag.
  bucket.slots.drop_front(bucket.head);
  bucket.head = 0;
  bucket.heap_mode = true;
  ++heap_buckets_;
}

void CalendarQueue::locate_min_slow() {
  // Scan forward one calendar year. A bucket's front is its earliest entry,
  // and day order implies when order, so the first front matching the
  // scanned day is the global minimum's day.
  const std::size_t nbuckets = buckets_.size();
  for (std::size_t i = 0; i < nbuckets; ++i) {
    const std::uint64_t day = current_day_ + i;
    if (day < current_day_) {
      break;  // wrapped past the last representable day
    }
    Bucket& bucket = bucket_of_day(day);
    if (!bucket.empty() && day_of(bucket_front(bucket).when) == day) {
      current_day_ = day;
      min_bucket_ = &bucket;
      return;
    }
  }
  // A whole year of empty days: the next event is far in the future. Jump
  // straight to the minimum day across bucket fronts — O(nbuckets), not
  // O(gap) — and widen days to match the observed gap so the *next* quiet
  // stretch is a short scan instead of another jump.
  std::uint64_t best_day = std::numeric_limits<std::uint64_t>::max();
  for (Bucket& bucket : buckets_) {
    if (!bucket.empty()) {
      best_day = std::min(best_day, day_of(bucket_front(bucket).when));
    }
  }
  const std::uint64_t day_gap = best_day - current_day_;
  current_day_ = best_day;
  min_bucket_ = &bucket_of_day(best_day);
  ++day_jumps_;

  const std::uint64_t gap_ns =
      (std::bit_width(day_gap) + shift_ > 63) ? std::numeric_limits<std::uint64_t>::max()
                                              : day_gap << shift_;
  const unsigned wanted =
      shift_for_gap(gap_ns / std::max<std::size_t>(1, buckets_.size() / 4));
  if (wanted > shift_) {
    do_resize(static_cast<int>(wanted));
    // do_resize repoints current_day_ at the global minimum's day; its
    // bucket front is the minimum (buckets are sorted).
    min_bucket_ = &bucket_of_day(current_day_);
  }
}

void CalendarQueue::clear() {
  for (Bucket& bucket : buckets_) {
    bucket.slots.clear();
    bucket.head = 0;
    bucket.heap_mode = false;
  }
  size_ = 0;
  heap_buckets_ = 0;
  min_bucket_ = nullptr;
}

void CalendarQueue::do_resize(int forced_shift) {
  ++resizes_;
  std::vector<SimEvent> entries;
  entries.reserve(size_);
  for (Bucket& bucket : buckets_) {
    if (bucket.heap_mode) {
      entries.insert(entries.end(), bucket.slots.begin(), bucket.slots.end());
    } else {
      entries.insert(entries.end(),
                     bucket.slots.begin() + static_cast<std::ptrdiff_t>(bucket.head),
                     bucket.slots.end());
    }
    bucket.slots.clear();
    bucket.head = 0;
    bucket.heap_mode = false;
  }
  heap_buckets_ = 0;

  std::size_t nbuckets = std::bit_ceil(size_ == 0 ? std::size_t{1} : size_);
  nbuckets = std::clamp(nbuckets, kMinBuckets, kMaxBuckets);
  buckets_.resize(nbuckets);
  bucket_mask_ = nbuckets - 1;
  min_bucket_ = nullptr;
  resize_up_at_ = nbuckets >= kMaxBuckets
                      ? std::numeric_limits<std::size_t>::max()
                      : 2 * nbuckets;
  resize_down_at_ = nbuckets > kMinBuckets ? nbuckets / 8 : 0;

  if (entries.empty()) {
    return;
  }

  // Redistribution appends in globally sorted order, so every bucket's run
  // stays sorted with zero per-entry search.
  std::sort(entries.begin(), entries.end(), earlier);

  if (forced_shift >= 0) {
    shift_ = static_cast<unsigned>(forced_shift);
  } else {
    // Day width = average gap between *distinct* timestamps (rounded down
    // to a power of two). Same-timestamp batches would drag a plain
    // min/max/size estimate to zero and pile every batch into one day.
    std::uint64_t distinct = 1;
    for (std::size_t i = 1; i < entries.size(); ++i) {
      distinct += entries[i].when != entries[i - 1].when ? 1 : 0;
    }
    const std::uint64_t span = entries.back().when - entries.front().when;
    shift_ = shift_for_gap(distinct > 1 ? span / (distinct - 1) : 0);
  }

  for (const SimEvent& entry : entries) {
    bucket_of_day(day_of(entry.when)).slots.push_back(entry);
  }
  current_day_ = day_of(entries.front().when);
}

EventQueueStats CalendarQueue::stats() const {
  EventQueueStats stats;
  stats.slab.acquired = pushes_;
  stats.slab.released = pushes_ - size_;
  stats.slab.live = size_;
  stats.slab.live_high_water = live_high_water_;
  stats.slab.slabs = buckets_.size();
  for (const Bucket& bucket : buckets_) {
    stats.slab.bytes_reserved += bucket.slots.capacity() * sizeof(SimEvent);
  }
  stats.buckets = buckets_.size();
  stats.resizes = resizes_;
  stats.day_jumps = day_jumps_;
  stats.heap_buckets = heap_buckets_;
  return stats;
}

}  // namespace pvm
