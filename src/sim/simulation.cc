#include "src/sim/simulation.h"

#include <stdexcept>

namespace pvm {

Simulation::~Simulation() {
  // Drop any queued resumptions first, then reclaim root frames. Destroying a
  // suspended coroutine frame is safe; destroying a completed one is too.
  while (!queue_.empty()) {
    queue_.pop();
  }
  for (auto handle : roots_) {
    if (handle) {
      handle.destroy();
    }
  }
}

void Simulation::spawn(Task<void> task) {
  auto handle = task.release();
  if (!handle) {
    throw std::invalid_argument("Simulation::spawn: empty task");
  }
  handle.promise().sim = this;
  roots_.push_back(handle);
  schedule(handle, now_);
}

void Simulation::schedule(std::coroutine_handle<> handle, SimTime when) {
  if (when < now_) {
    throw std::logic_error("Simulation::schedule: time went backwards");
  }
  queue_.push(Event{when, next_seq_++, handle});
}

std::uint64_t Simulation::run() {
  std::uint64_t processed = 0;
  while (!queue_.empty()) {
    Event event = queue_.top();
    queue_.pop();
    now_ = event.when;
    event.handle.resume();
    ++processed;
    ++events_processed_;
  }
  rethrow_failed_roots();
  return processed;
}

std::uint64_t Simulation::run_until(SimTime deadline) {
  std::uint64_t processed = 0;
  while (!queue_.empty() && queue_.top().when <= deadline) {
    Event event = queue_.top();
    queue_.pop();
    now_ = event.when;
    event.handle.resume();
    ++processed;
    ++events_processed_;
  }
  if (now_ < deadline) {
    now_ = deadline;
  }
  rethrow_failed_roots();
  return processed;
}

bool Simulation::all_tasks_done() const {
  for (auto handle : roots_) {
    if (handle && !handle.done()) {
      return false;
    }
  }
  return true;
}

std::size_t Simulation::pending_task_count() const {
  std::size_t pending = 0;
  for (auto handle : roots_) {
    if (handle && !handle.done()) {
      ++pending;
    }
  }
  return pending;
}

void Simulation::rethrow_failed_roots() {
  for (auto handle : roots_) {
    if (handle && handle.done() && handle.promise().exception) {
      std::exception_ptr exception = handle.promise().exception;
      handle.promise().exception = nullptr;
      std::rethrow_exception(exception);
    }
  }
}

}  // namespace pvm
