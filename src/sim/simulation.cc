#include "src/sim/simulation.h"

#include <algorithm>
#include <stdexcept>

#include "src/fault/fault.h"
#include "src/obs/flight.h"
#include "src/obs/span.h"
#include "src/sim/resource.h"

namespace pvm {

namespace {

// splitmix64 finalizer: decorrelates the (seed, seq) pair into a uniform tie
// key so kRandom explores a fresh interleaving per schedule seed.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

Simulation::~Simulation() { abandon_pending(); }

void Simulation::abandon_pending() {
  // Drop queued resumptions first, then reclaim root frames. Destroying a
  // suspended coroutine frame is safe; destroying a completed one is too.
  while (!queue_.empty()) {
    queue_.pop();
  }
  for (auto& handle : roots_) {
    if (handle) {
      handle.destroy();
      handle = nullptr;
    }
  }
  // Frame destructors may have released Resources, which re-schedules their
  // (now destroyed) waiters; purge those dangling handles without resuming.
  while (!queue_.empty()) {
    queue_.pop();
  }
}

void Simulation::set_spans(obs::SpanRecorder* spans) {
  spans_ = spans;
  if (spans_ != nullptr) {
    spans_->bind(&now_, &active_root_);
  }
}

void Simulation::set_faults(fault::FaultInjector* faults) {
  faults_ = faults;
  if (faults_ != nullptr) {
    faults_->bind(&now_);
  }
}

void Simulation::set_flight(flight::FlightRecorder* flight) {
  flight_ = flight;
  if (flight_ != nullptr) {
    flight_->bind(&now_, &active_root_);
  }
}

void Simulation::set_schedule_policy(SchedulePolicy policy, std::uint64_t seed) {
  policy_ = policy;
  schedule_seed_ = seed;
}

std::uint64_t Simulation::tie_key(std::uint64_t seq) const {
  switch (policy_) {
    case SchedulePolicy::kFifo:
      return seq;
    case SchedulePolicy::kLifo:
      return ~seq;
    case SchedulePolicy::kRandom:
      return mix64(schedule_seed_ ^ (seq * 0xd1342543de82ef95ull));
  }
  return seq;
}

void Simulation::assert_thread_confined() const {
  const std::thread::id self = std::this_thread::get_id();
  if (owner_ == std::thread::id{}) {
    owner_ = self;
    return;
  }
  if (owner_ != self) {
    throw std::logic_error(
        "Simulation used from two threads: a Simulation is single-threaded by "
        "design; run whole simulations on separate threads instead (pvm::sweep)");
  }
}

void Simulation::spawn(Task<void> task, std::string name) {
  assert_thread_confined();
  auto handle = task.release();
  if (!handle) {
    throw std::invalid_argument("Simulation::spawn: empty task");
  }
  handle.promise().sim = this;
  const std::int64_t root = static_cast<std::int64_t>(roots_.size());
  roots_.push_back(handle);
  root_names_.push_back(name.empty() ? "task#" + std::to_string(root) : std::move(name));
  schedule(handle, now_, root);
}

void Simulation::schedule(std::coroutine_handle<> handle, SimTime when) {
  schedule(handle, when, active_root_);
}

void Simulation::schedule(std::coroutine_handle<> handle, SimTime when, std::int64_t root) {
  assert_thread_confined();
  if (when < now_) {
    throw std::logic_error("Simulation::schedule: time went backwards");
  }
  const std::uint64_t seq = next_seq_++;
  queue_.push(Event{when, tie_key(seq), seq, root, handle});
}

std::uint64_t Simulation::run() {
  assert_thread_confined();
  std::uint64_t processed = 0;
  while (!queue_.empty()) {
    Event event = queue_.top();
    queue_.pop();
    now_ = event.when;
    active_root_ = event.root;
    event.handle.resume();
    active_root_ = -1;
    ++processed;
    ++events_processed_;
  }
  rethrow_failed_roots();
  return processed;
}

std::uint64_t Simulation::run_until(SimTime deadline) {
  assert_thread_confined();
  std::uint64_t processed = 0;
  while (!queue_.empty() && queue_.top().when <= deadline) {
    Event event = queue_.top();
    queue_.pop();
    now_ = event.when;
    active_root_ = event.root;
    event.handle.resume();
    active_root_ = -1;
    ++processed;
    ++events_processed_;
  }
  if (now_ < deadline) {
    now_ = deadline;
  }
  rethrow_failed_roots();
  return processed;
}

bool Simulation::all_tasks_done() const {
  for (auto handle : roots_) {
    if (handle && !handle.done()) {
      return false;
    }
  }
  return true;
}

std::size_t Simulation::pending_task_count() const {
  std::size_t pending = 0;
  for (auto handle : roots_) {
    if (handle && !handle.done()) {
      ++pending;
    }
  }
  return pending;
}

void Simulation::register_resource(Resource* resource) { resources_.push_back(resource); }

void Simulation::unregister_resource(Resource* resource) {
  resources_.erase(std::remove(resources_.begin(), resources_.end(), resource),
                   resources_.end());
}

std::string Simulation::blocked_report() const {
  std::string report;
  std::vector<std::int64_t> pending;
  for (std::size_t i = 0; i < roots_.size(); ++i) {
    if (roots_[i] && !roots_[i].done()) {
      pending.push_back(static_cast<std::int64_t>(i));
    }
  }
  if (pending.empty() && diagnostics_.empty()) {
    return report;
  }
  for (const std::string& line : diagnostics_) {
    report += "  diagnostic: " + line + "\n";
  }
  if (pending.empty()) {
    return report;
  }
  report += std::to_string(pending.size()) + "/" + std::to_string(roots_.size()) +
            " root tasks pending:\n";
  for (const std::int64_t root : pending) {
    report += "  - \"" + root_names_[static_cast<std::size_t>(root)] + "\"";
    // Name every resource FIFO queue this root task is parked in.
    bool parked = false;
    for (const Resource* resource : resources_) {
      for (const auto& waiter : resource->waiters()) {
        if (waiter.root == root) {
          report += parked ? ", " : " waiting on ";
          report += "\"" + resource->name() + "\" (queued " +
                    std::to_string(now_ - waiter.enqueued) + " ns ago)";
          parked = true;
        }
      }
    }
    if (!parked) {
      report += " (not in any resource queue: lost wakeup or un-fired await)";
    }
    report += "\n";
  }
  for (const Resource* resource : resources_) {
    if (resource->queue_depth() == 0) {
      continue;
    }
    report += "  resource \"" + resource->name() + "\": capacity " +
              std::to_string(resource->capacity()) + ", " +
              std::to_string(resource->queue_depth()) + " queued, ages ns [";
    // Queue ages in FIFO order: oldest waiter first. A deadlocked queue shows
    // monotonically decreasing ages; one stale outlier points at the waiter
    // whose wakeup was lost.
    bool first = true;
    for (const auto& waiter : resource->waiters()) {
      report += (first ? "" : ", ") + std::to_string(now_ - waiter.enqueued);
      first = false;
    }
    report += "]\n";
  }
  return report;
}

void Simulation::rethrow_failed_roots() {
  for (auto handle : roots_) {
    if (handle && handle.done() && handle.promise().exception) {
      std::exception_ptr exception = handle.promise().exception;
      handle.promise().exception = nullptr;
      std::rethrow_exception(exception);
    }
  }
}

}  // namespace pvm
