#include "src/sim/simulation.h"

#include <algorithm>
#include <stdexcept>

#include "src/fault/fault.h"
#include "src/obs/flight.h"
#include "src/obs/span.h"
#include "src/obs/ts.h"
#include "src/sim/resource.h"

namespace pvm {

namespace {

// splitmix64 finalizer: decorrelates the (seed, seq) pair into a uniform tie
// key so kRandom explores a fresh interleaving per schedule seed.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

Simulation::~Simulation() { abandon_pending(); }

void Simulation::abandon_pending() {
  // Drop queued resumptions first, then reclaim root frames. Destroying a
  // suspended coroutine frame is safe; destroying a completed one is too.
  queue_.clear();
  for (auto& handle : roots_) {
    if (handle) {
      handle.destroy();
      handle = nullptr;
    }
  }
  // Frame destructors may have released Resources, which re-schedules their
  // (now destroyed) waiters; purge those dangling handles without resuming.
  queue_.clear();
}

void Simulation::set_spans(obs::SpanRecorder* spans) {
  spans_ = spans;
  if (spans_ != nullptr) {
    spans_->bind(&now_, &active_root_);
  }
  // Exemplar context for the collector, regardless of attachment order.
  if (ts_ != nullptr) {
    ts_->bind_context(&active_root_, spans_);
  }
}

void Simulation::set_faults(fault::FaultInjector* faults) {
  faults_ = faults;
  if (faults_ != nullptr) {
    faults_->bind(&now_);
  }
}

void Simulation::set_flight(flight::FlightRecorder* flight) {
  flight_ = flight;
  if (flight_ != nullptr) {
    flight_->bind(&now_, &active_root_);
    flight_->set_ts(ts_);
  }
}

void Simulation::set_ts(ts::Collector* collector) {
  ts_ = collector;
  if (ts_ != nullptr) {
    ts_->bind(&now_);
    ts_->bind_context(&active_root_, spans_);
  }
  // Wire the flight-event bridge regardless of attachment order.
  if (flight_ != nullptr) {
    flight_->set_ts(ts_);
  }
}

void Simulation::set_schedule_policy(SchedulePolicy policy, std::uint64_t seed) {
  policy_ = policy;
  schedule_seed_ = seed;
}

std::uint64_t Simulation::random_tie_key(std::uint64_t seq) const {
  return mix64(schedule_seed_ ^ (seq * 0xd1342543de82ef95ull));
}

void Simulation::bind_or_reject_thread() const {
  if (owner_key_ == nullptr) {
    owner_key_ = thread_key();
    return;
  }
  throw std::logic_error(
      "Simulation used from two threads: a Simulation is single-threaded by "
      "design; run whole simulations on separate threads instead (pvm::sweep)");
}

void Simulation::spawn(Task<void> task, std::string name) {
  assert_thread_confined();
  auto handle = task.release();
  if (!handle) {
    throw std::invalid_argument("Simulation::spawn: empty task");
  }
  handle.promise().sim = this;
  const std::int64_t root = static_cast<std::int64_t>(roots_.size());
  roots_.push_back(handle);
  root_names_.push_back(name.empty() ? "task#" + std::to_string(root) : std::move(name));
  schedule(handle, now_, root);
}

// Batched dispatch: pop the whole front run of same-timestamp events in one
// queue operation, then resume them back-to-back. Sound only under FIFO ties
// (see CalendarQueue::pop_min_run); the other policies dispatch one event
// per queue operation, which pops in the identical (when, tie, seq) order.
// If a resume throws, the un-dispatched tail is re-enqueued so the queue is
// left exactly as the unbatched loop would leave it.
std::size_t Simulation::dispatch_min_run() {
  if (policy_ != SchedulePolicy::kFifo) {
    const SimEvent event = queue_.pop();
    now_ = event.when;
    active_root_ = event.root;
    event.handle.resume();
    active_root_ = -1;
    ++events_processed_;
    return 1;
  }
  SimEvent batch[kDispatchBatch];
  const std::size_t n = queue_.pop_min_run(batch, kDispatchBatch);
  std::size_t i = 0;
  try {
    for (; i < n; ++i) {
      now_ = batch[i].when;
      active_root_ = batch[i].root;
      batch[i].handle.resume();
      active_root_ = -1;
      ++events_processed_;
    }
  } catch (...) {
    for (std::size_t j = i + 1; j < n; ++j) {
      queue_.push(batch[j]);
    }
    throw;
  }
  return n;
}

std::uint64_t Simulation::run() {
  assert_thread_confined();
  const std::uint64_t start = events_processed_;
  while (!queue_.empty()) {
    dispatch_min_run();
  }
  rethrow_failed_roots();
  return events_processed_ - start;
}

std::uint64_t Simulation::run_until(SimTime deadline) {
  assert_thread_confined();
  std::uint64_t processed = 0;
  // Events at exactly `deadline` run (inclusive bound), including cascades
  // they schedule at the deadline; later events stay queued — the contract
  // pinned by RunUntilBoundaryTest in sim_test.cc. A dispatched run shares
  // one timestamp, so the deadline check per run bounds every event in it.
  while (!queue_.empty() && queue_.min_when() <= deadline) {
    processed += dispatch_min_run();
  }
  if (now_ < deadline) {
    now_ = deadline;
  }
  rethrow_failed_roots();
  return processed;
}

bool Simulation::all_tasks_done() const {
  for (auto handle : roots_) {
    if (handle && !handle.done()) {
      return false;
    }
  }
  return true;
}

std::size_t Simulation::pending_task_count() const {
  std::size_t pending = 0;
  for (auto handle : roots_) {
    if (handle && !handle.done()) {
      ++pending;
    }
  }
  return pending;
}

void Simulation::register_resource(Resource* resource) { resources_.push_back(resource); }

void Simulation::unregister_resource(Resource* resource) {
  resources_.erase(std::remove(resources_.begin(), resources_.end(), resource),
                   resources_.end());
}

std::string Simulation::blocked_report() const {
  std::string report;
  std::vector<std::int64_t> pending;
  for (std::size_t i = 0; i < roots_.size(); ++i) {
    if (roots_[i] && !roots_[i].done()) {
      pending.push_back(static_cast<std::int64_t>(i));
    }
  }
  if (pending.empty() && diagnostics_.empty()) {
    return report;
  }
  for (const std::string& line : diagnostics_) {
    report += "  diagnostic: " + line + "\n";
  }
  if (pending.empty()) {
    return report;
  }
  report += std::to_string(pending.size()) + "/" + std::to_string(roots_.size()) +
            " root tasks pending:\n";
  for (const std::int64_t root : pending) {
    report += "  - \"" + root_names_[static_cast<std::size_t>(root)] + "\"";
    // Name every resource FIFO queue this root task is parked in.
    bool parked = false;
    for (const Resource* resource : resources_) {
      for (const auto& waiter : resource->waiters()) {
        if (waiter.root == root) {
          report += parked ? ", " : " waiting on ";
          report += "\"" + resource->name() + "\" (queued " +
                    std::to_string(now_ - waiter.enqueued) + " ns ago)";
          parked = true;
        }
      }
    }
    if (!parked) {
      report += " (not in any resource queue: lost wakeup or un-fired await)";
    }
    report += "\n";
  }
  for (const Resource* resource : resources_) {
    if (resource->queue_depth() == 0) {
      continue;
    }
    report += "  resource \"" + resource->name() + "\": capacity " +
              std::to_string(resource->capacity()) + ", " +
              std::to_string(resource->queue_depth()) + " queued, ages ns [";
    // Queue ages in FIFO order: oldest waiter first. A deadlocked queue shows
    // monotonically decreasing ages; one stale outlier points at the waiter
    // whose wakeup was lost.
    bool first = true;
    for (const auto& waiter : resource->waiters()) {
      report += (first ? "" : ", ") + std::to_string(now_ - waiter.enqueued);
      first = false;
    }
    report += "]\n";
  }
  return report;
}

void Simulation::rethrow_failed_roots() {
  for (auto handle : roots_) {
    if (handle && handle.done() && handle.promise().exception) {
      std::exception_ptr exception = handle.promise().exception;
      handle.promise().exception = nullptr;
      std::rethrow_exception(exception);
    }
  }
}

}  // namespace pvm
