// Calendar event queue for the discrete-event core.
//
// Replaces the binary-heap std::priority_queue in Simulation. The queue
// stores pending coroutine resumptions keyed by (when, tie, seq) — the exact
// total order the heap used: virtual time first, then the schedule policy's
// tie key, then insertion sequence as the final arbiter. Because the order
// is total (seq is unique), *any* correct min-queue pops in the identical
// sequence; swapping the container is therefore invisible to every consumer,
// bit for bit. The differential fuzz suite (fuzz_property_test.cc) and the
// golden byte-identity suite (tests/golden/) hold this queue to that
// contract against a std::priority_queue oracle.
//
// Structure (Brown's calendar queue, adapted for the simulator's patterns):
//
//   - Buckets form a power-of-two calendar: an entry's "day" is
//     when >> shift, its bucket day & (nbuckets - 1). Entries whose days
//     collide in one bucket ("other years") wait their turn behind the
//     current year's.
//
//   - Each bucket is a sorted gap buffer, not a heap. The simulator's hot
//     pattern is a batch of events at one timestamp resuming and scheduling
//     the next batch: under FIFO ties new keys are the bucket's maximum
//     (append, O(1)); under LIFO ties they are the minimum of the live batch
//     (prepend into the front gap, amortized O(1)); random ties
//     binary-insert. Pop takes the front element — one load, no sift-down.
//     A binary heap pays O(log n) compares + moves on *every* pop; the
//     sorted bucket pays nothing, which is where the throughput win lives.
//
//   - A bucket that grows past kHeapBucket entries (an irreducible
//     same-timestamp flood with random ties — the one pattern where sorted
//     insertion costs O(n) memmove) flips to heap mode: a sorted array is
//     already a valid min-heap, so the flip is free, ops become push_heap/
//     pop_heap, and the worst case stays O(log n) — the old
//     priority_queue's complexity, never worse. The bucket reverts when it
//     drains.
//
//   - current_day_ is a lower bound on every live entry's day. Pop's fast
//     path checks the current day's bucket front; while a day drains —
//     the common case — there is no search at all. This is what "batched
//     dispatch" means here: one locate amortizes over a whole day's worth
//     of events, while every pop still consults the live bucket, so events
//     scheduled *during* the batch (e.g. LIFO ties that must run next) are
//     ordered exactly as the old heap ordered them. When the day drains,
//     the scan walks consecutive days (O(1) each); after a calendar year of
//     empty days it jumps straight to the minimum day across bucket fronts,
//     so sparse far-future schedules cost O(nbuckets), not O(gap).
//
//   - The calendar resizes (re-deriving shift from the live entries'
//     average gap) when occupancy leaves [nbuckets/8, 2*nbuckets], keeping
//     buckets O(1) on average.
//
// Bucket storage is arena-style: vectors keep their capacity across
// push/pop churn, so steady-state operation performs zero allocations; the
// high-water mark and reserved bytes are tracked and surfaced through
// EventQueueStats into the opt-in `alloc` section of pvm.bench.v1.
//
// Thread-unsafe by design; owned by the thread-confined Simulation.

#ifndef PVM_SRC_SIM_EVENT_QUEUE_H_
#define PVM_SRC_SIM_EVENT_QUEUE_H_

#include <algorithm>
#include <coroutine>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <type_traits>
#include <vector>

#include "src/sim/arena.h"

namespace pvm {

// One pending resumption. `tie` is the schedule policy's tie key, `seq` the
// global insertion sequence (unique — makes the order total).
struct SimEvent {
  std::uint64_t when;
  std::uint64_t tie;
  std::uint64_t seq;
  std::int64_t root;
  std::coroutine_handle<> handle;
};

// Minimal growable array of SimEvent. std::vector's push_back compiles to an
// out-of-line call here (the realloc path drags the whole function out of
// line), which alone cost ~40% of the simulator's event budget; this buffer
// guarantees the append fast path stays three inlined instructions. Grows
// geometrically, never shrinks — bucket storage is arena-style, reused
// across churn so steady-state operation allocates nothing.
class EventBuf {
 public:
  static_assert(std::is_trivially_copyable_v<SimEvent>);

  EventBuf() = default;
  EventBuf(const EventBuf&) = delete;
  EventBuf& operator=(const EventBuf&) = delete;
  EventBuf(EventBuf&& other) noexcept
      : data_(other.data_), len_(other.len_), cap_(other.cap_) {
    other.data_ = nullptr;
    other.len_ = other.cap_ = 0;
  }
  EventBuf& operator=(EventBuf&& other) noexcept {
    if (this != &other) {
      delete[] data_;
      data_ = other.data_;
      len_ = other.len_;
      cap_ = other.cap_;
      other.data_ = nullptr;
      other.len_ = other.cap_ = 0;
    }
    return *this;
  }
  ~EventBuf() { delete[] data_; }

  bool empty() const { return len_ == 0; }
  std::size_t size() const { return len_; }
  std::size_t capacity() const { return cap_; }
  SimEvent* begin() { return data_; }
  SimEvent* end() { return data_ + len_; }
  SimEvent& operator[](std::size_t i) { return data_[i]; }
  const SimEvent& operator[](std::size_t i) const { return data_[i]; }
  SimEvent& front() { return data_[0]; }
  const SimEvent& front() const { return data_[0]; }
  SimEvent& back() { return data_[len_ - 1]; }
  const SimEvent& back() const { return data_[len_ - 1]; }

  void clear() { len_ = 0; }
  void pop_back() { --len_; }

  void push_back(const SimEvent& event) {
    if (len_ == cap_) [[unlikely]] {
      grow(1);
    }
    data_[len_++] = event;
  }

  // Shifts the live run right by `gap` slots (contents of the gap are
  // unspecified — callers fill it back-to-front).
  void open_front_gap(std::size_t gap) {
    if (len_ + gap > cap_) {
      grow(gap);
    }
    std::memmove(data_ + gap, data_, len_ * sizeof(SimEvent));
    len_ += gap;
  }

  void insert_at(std::size_t index, const SimEvent& event) {
    if (len_ == cap_) {
      grow(1);
    }
    std::memmove(data_ + index + 1, data_ + index, (len_ - index) * sizeof(SimEvent));
    data_[index] = event;
    ++len_;
  }

  void drop_front(std::size_t n) {
    std::memmove(data_, data_ + n, (len_ - n) * sizeof(SimEvent));
    len_ -= n;
  }

 private:
  void grow(std::size_t need);

  SimEvent* data_ = nullptr;
  std::uint32_t len_ = 0;
  std::uint32_t cap_ = 0;
};

struct EventQueueStats {
  SlabStats slab;                 // event-slot accounting (live == queued)
  std::uint64_t buckets = 0;      // current calendar width
  std::uint64_t resizes = 0;      // calendar rebuilds
  std::uint64_t day_jumps = 0;    // sparse-gap direct jumps taken
  std::uint64_t heap_buckets = 0; // flood buckets currently in heap mode
};

class CalendarQueue {
 public:
  CalendarQueue();
  CalendarQueue(const CalendarQueue&) = delete;
  CalendarQueue& operator=(const CalendarQueue&) = delete;

  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }

  // Enqueues one event. Amortized O(1) for time-ordered and same-timestamp
  // FIFO/LIFO patterns; O(log bucket) once a bucket flips to heap mode.
  // Inline: push and pop are the simulator's innermost loop.
  void push(const SimEvent& event) {
    const std::uint64_t day = day_of(event.when);
    Bucket& bucket = bucket_of_day(day);
    // Fast path kept inline: a sorted-mode append — the overwhelmingly
    // common case (time-ordered schedules and FIFO ties are both appends).
    if (!bucket.heap_mode &&
        (bucket.slots.empty() || earlier(bucket.slots.back(), event))) {
      bucket.slots.push_back(event);
    } else {
      bucket_push_slow(bucket, event);
    }
    if (size_ == 0 || day < current_day_) {
      current_day_ = day;
    }
    ++size_;
    if (size_ > live_high_water_) {
      live_high_water_ = size_;
    }
    ++pushes_;
    if (size_ > resize_up_at_) {
      resize_calendar();
    }
  }

  // Timestamp of the earliest event (full-key minimum). Locates the minimum
  // and caches the location for the following pop(). Precondition: !empty().
  std::uint64_t min_when() {
    locate_min();
    return bucket_front(*min_bucket_).when;
  }

  // Pops the earliest event by (when, tie, seq). Precondition: !empty().
  SimEvent pop() {
    locate_min();
    const SimEvent event = bucket_pop(*min_bucket_);
    --size_;
    if (size_ < resize_down_at_) {
      resize_calendar();
    }
    return event;
  }

  // Pops the front run of events sharing the minimum timestamp — at most
  // `max` — writing them to `out` in pop order. Returns the count popped
  // (>= 1). ONLY sound when the caller guarantees no future push can sort
  // before the copied run's tail: true under FIFO ties, where a
  // same-timestamp push receives a strictly larger (tie, seq) than
  // everything already queued; NOT true for LIFO (~seq shrinks) or random
  // ties. Heap-mode buckets have no contiguous sorted run and fall back to
  // a single pop. Precondition: !empty().
  std::size_t pop_min_run(SimEvent* out, std::size_t max) {
    locate_min();
    Bucket& bucket = *min_bucket_;
    if (bucket.heap_mode) {
      out[0] = bucket_pop(bucket);
      --size_;
      if (size_ < resize_down_at_) {
        resize_calendar();
      }
      return 1;
    }
    const std::uint64_t when = bucket.slots[bucket.head].when;
    std::size_t n = 0;
    while (n < max && bucket.head < bucket.slots.size() &&
           bucket.slots[bucket.head].when == when) {
      out[n] = bucket.slots[bucket.head];
      ++bucket.head;
      ++n;
    }
    // Same compaction policy as bucket_pop, applied once per run.
    if (bucket.head == bucket.slots.size()) {
      bucket.slots.clear();
      bucket.head = 0;
    } else if (bucket.head >= 64 && bucket.head * 2 >= bucket.slots.size()) {
      bucket.slots.drop_front(bucket.head);
      bucket.head = 0;
    }
    size_ -= n;
    if (size_ < resize_down_at_) {
      resize_calendar();
    }
    return n;
  }

  // Drops every queued event without resuming anything.
  void clear();

  EventQueueStats stats() const;

 private:
  // A sorted run of events ([head, slots.size()) ascending by key) with a
  // reusable front gap, or — past kHeapBucket live entries — a binary
  // min-heap over the same storage (heap_mode).
  struct Bucket {
    EventBuf slots;
    std::size_t head = 0;
    bool heap_mode = false;

    std::size_t live() const { return slots.size() - head; }
    bool empty() const { return slots.size() == head; }
  };

  // Strict total order: a runs before b.
  static bool earlier(const SimEvent& a, const SimEvent& b) {
    if (a.when != b.when) {
      return a.when < b.when;
    }
    if (a.tie != b.tie) {
      return a.tie < b.tie;
    }
    return a.seq < b.seq;
  }

  // std::*_heap comparator: max-heap under "later" == min-heap under key.
  struct Later {
    bool operator()(const SimEvent& a, const SimEvent& b) const {
      return earlier(b, a);
    }
  };

  static constexpr std::size_t kMinBuckets = 4;
  static constexpr std::size_t kHeapBucket = 512;

  std::uint64_t day_of(std::uint64_t when) const { return when >> shift_; }
  Bucket& bucket_of_day(std::uint64_t day) { return buckets_[day & bucket_mask_]; }

  static const SimEvent& bucket_front(const Bucket& bucket) {
    return bucket.heap_mode ? bucket.slots.front() : bucket.slots[bucket.head];
  }

  // Slow cases only: heap-mode push, LIFO prepend, random-tie middle insert.
  void bucket_push_slow(Bucket& bucket, const SimEvent& event);

  SimEvent bucket_pop(Bucket& bucket) {
    if (bucket.heap_mode) {
      std::pop_heap(bucket.slots.begin(), bucket.slots.end(), Later{});
      const SimEvent event = bucket.slots.back();
      bucket.slots.pop_back();
      if (bucket.slots.empty()) {
        bucket.heap_mode = false;
        --heap_buckets_;
      }
      return event;
    }
    const SimEvent event = bucket.slots[bucket.head++];
    if (bucket.head == bucket.slots.size()) {
      bucket.slots.clear();
      bucket.head = 0;
    } else if (bucket.head >= 64 && bucket.head * 2 >= bucket.slots.size()) {
      // Steady same-timestamp churn (pop front, append back) would otherwise
      // grow the buffer without bound; dropping the consumed prefix once it
      // dominates costs at most one element move per prior pop.
      bucket.slots.drop_front(bucket.head);
      bucket.head = 0;
    }
    return event;
  }

  void bucket_push_front(Bucket& bucket, const SimEvent& event);
  void bucket_insert_middle(Bucket& bucket, const SimEvent& event);
  void bucket_to_heap(Bucket& bucket);

  // Points current_day_ (and the cached min_bucket_) at the day of the
  // global minimum entry. Precondition: !empty().
  void locate_min() {
    // Fast path: the current day's bucket still has a same-day entry in
    // front — while a day drains, every pop lands here.
    Bucket& bucket = bucket_of_day(current_day_);
    if (!bucket.empty() && day_of(bucket_front(bucket).when) == current_day_) {
      min_bucket_ = &bucket;
      return;
    }
    locate_min_slow();
  }

  void locate_min_slow();

  // Rebuilds the calendar for the current size: picks nbuckets as the next
  // power of two >= size (clamped) and shift from the live entries' average
  // gap between *distinct* timestamps, then redistributes (globally sorted,
  // so every bucket receives its entries in order). A day jump that skipped
  // a whole calendar year instead passes the observed gap via forced_shift
  // to widen days — the size-based estimator can't see inter-batch gaps
  // when every live event shares one timestamp.
  void resize_calendar() { do_resize(-1); }
  void do_resize(int forced_shift);

  std::vector<Bucket> buckets_;
  std::size_t size_ = 0;
  std::uint64_t bucket_mask_ = 0;   // nbuckets - 1 (power of two)
  unsigned shift_ = 0;              // log2 of a day's width in ns
  std::uint64_t current_day_ = 0;   // lower bound on every live entry's day
  Bucket* min_bucket_ = nullptr;    // set by locate_min(), valid until mutation
  // Occupancy band [nbuckets/8, 2*nbuckets] cached so the per-op checks are
  // one load + compare (resize_down_at_ is 0 at the minimum width).
  std::size_t resize_up_at_ = 2 * kMinBuckets;
  std::size_t resize_down_at_ = 0;
  std::uint64_t pushes_ = 0;
  std::uint64_t live_high_water_ = 0;
  std::uint64_t resizes_ = 0;
  std::uint64_t day_jumps_ = 0;
  std::uint64_t heap_buckets_ = 0;
};

}  // namespace pvm

#endif  // PVM_SRC_SIM_EVENT_QUEUE_H_
