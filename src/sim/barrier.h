// Cyclic barrier for simulated threads (fluidanimate-style phase sync).

#ifndef PVM_SRC_SIM_BARRIER_H_
#define PVM_SRC_SIM_BARRIER_H_

#include <coroutine>
#include <cstdint>
#include <vector>

#include "src/sim/simulation.h"

namespace pvm {

class SimBarrier {
 public:
  SimBarrier(Simulation& sim, int parties) : sim_(&sim), parties_(parties) {}

  struct Awaiter {
    SimBarrier* barrier;

    bool await_ready() noexcept {
      if (barrier->waiting_ + 1 == barrier->parties_) {
        // Last arriver releases everyone and passes through.
        for (std::coroutine_handle<> handle : barrier->waiters_) {
          barrier->sim_->schedule(handle, barrier->sim_->now());
        }
        barrier->waiters_.clear();
        barrier->waiting_ = 0;
        ++barrier->generation_;
        return true;
      }
      return false;
    }
    template <typename Promise>
    void await_suspend(std::coroutine_handle<Promise> handle) noexcept {
      ++barrier->waiting_;
      barrier->waiters_.push_back(handle);
    }
    void await_resume() const noexcept {}
  };

  // Awaitable: suspends until all `parties` have arrived.
  Awaiter arrive_and_wait() { return Awaiter{this}; }

  std::uint64_t generation() const { return generation_; }
  int waiting() const { return waiting_; }

 private:
  Simulation* sim_;
  int parties_;
  int waiting_ = 0;
  std::uint64_t generation_ = 0;
  std::vector<std::coroutine_handle<>> waiters_;
};

}  // namespace pvm

#endif  // PVM_SRC_SIM_BARRIER_H_
