// FIFO-queued resources for modelling contended structures.
//
// A `Resource` with capacity 1 models a lock (the paper's `mmu_lock`, the L0
// hypervisor's serialization point, a per-shadow-page `pt_lock`, ...); larger
// capacities model pools. Acquisition order is strictly FIFO so results are
// deterministic. Contention statistics (total wait, acquisitions, peak queue
// depth) are recorded for reporting. Each waiter remembers the root task it
// belongs to, so `Simulation::blocked_report()` can name who is parked where
// when a run deadlocks.
//
// Usage inside a Task:
//   ScopedResource guard = co_await lock.scoped();   // released at scope exit
// or the manual form:
//   co_await lock.acquire();
//   ...
//   lock.release();

#ifndef PVM_SRC_SIM_RESOURCE_H_
#define PVM_SRC_SIM_RESOURCE_H_

#include <coroutine>
#include <cstdint>
#include <deque>
#include <string>

#include "src/metrics/histogram.h"
#include "src/obs/flight.h"
#include "src/obs/span.h"
#include "src/sim/simulation.h"

namespace pvm {

class Resource;

// RAII guard: releases the resource when destroyed (coroutine frames keep the
// guard alive across suspension points, so this is suspension-safe).
class ScopedResource {
 public:
  ScopedResource() = default;
  explicit ScopedResource(Resource* resource) : resource_(resource) {}
  ScopedResource(ScopedResource&& other) noexcept
      : resource_(std::exchange(other.resource_, nullptr)) {}
  ScopedResource& operator=(ScopedResource&& other) noexcept;
  ScopedResource(const ScopedResource&) = delete;
  ScopedResource& operator=(const ScopedResource&) = delete;
  ~ScopedResource();

  void release();

 private:
  Resource* resource_ = nullptr;
};

class Resource {
 public:
  struct Waiter {
    std::coroutine_handle<> handle;
    std::int64_t root;     // owning root task at enqueue time (-1 if unknown)
    SimTime enqueued = 0;  // virtual time the waiter joined the queue
  };

  Resource(Simulation& sim, std::string name, std::uint32_t capacity = 1)
      : sim_(&sim), name_(std::move(name)), capacity_(capacity), available_(capacity) {
    sim_->register_resource(this);
  }
  Resource(const Resource&) = delete;
  Resource& operator=(const Resource&) = delete;
  ~Resource() { sim_->unregister_resource(this); }

  struct AcquireAwaiter {
    Resource* resource;
    SimTime enqueue_time = 0;
    bool waited = false;
    obs::SpanRecorder::Token wait_span{};

    bool await_ready() noexcept {
      if (resource->available_ > 0) {
        --resource->available_;
        ++resource->acquisitions_;
        resource->note_acquired();
        if (flight::FlightRecorder* flight = resource->sim_->flight()) {
          flight->record(flight::EventKind::kLockAcquire, resource->flight_id(flight), 0, 0);
        }
        return true;
      }
      return false;
    }
    template <typename Promise>
    void await_suspend(std::coroutine_handle<Promise> h) noexcept {
      waited = true;
      enqueue_time = resource->sim_->now();
      if (obs::SpanRecorder* spans = resource->sim_->spans()) {
        wait_span = spans->begin(obs::Phase::kLockWait);
      }
      resource->waiters_.push_back(Waiter{h, resource->sim_->active_root(), enqueue_time});
      if (resource->waiters_.size() > resource->peak_queue_depth_) {
        resource->peak_queue_depth_ = resource->waiters_.size();
      }
    }
    void await_resume() noexcept {
      if (waited) {
        // release() transferred ownership to us directly (available_ was not
        // incremented), so only the statistics need updating here.
        ++resource->acquisitions_;
        ++resource->contended_acquisitions_;
        const SimTime wait = resource->sim_->now() - enqueue_time;
        resource->total_wait_ns_ += wait;
        resource->wait_hist_.record(wait);
        if (wait_span.valid()) {
          if (obs::SpanRecorder* spans = resource->sim_->spans()) {
            spans->end_lock_wait(wait_span, resource->name_);
          }
        }
        resource->note_acquired();
        if (flight::FlightRecorder* flight = resource->sim_->flight()) {
          flight->record(flight::EventKind::kLockAcquire, resource->flight_id(flight), wait,
                         1);
        }
      }
    }
  };

  struct ScopedAwaiter {
    AcquireAwaiter inner;

    bool await_ready() noexcept { return inner.await_ready(); }
    template <typename Promise>
    void await_suspend(std::coroutine_handle<Promise> h) noexcept {
      inner.await_suspend(h);
    }
    ScopedResource await_resume() noexcept {
      inner.await_resume();
      return ScopedResource(inner.resource);
    }
  };

  // Awaitable acquire; caller must later call release().
  AcquireAwaiter acquire() { return AcquireAwaiter{this}; }

  // Awaitable acquire returning an RAII guard.
  ScopedAwaiter scoped() { return ScopedAwaiter{AcquireAwaiter{this}}; }

  // Releases one unit; resumes the oldest waiter (scheduled at current time).
  void release();

  // True if an acquire() would not block right now.
  bool available() const { return available_ > 0; }

  const std::string& name() const { return name_; }
  std::uint32_t capacity() const { return capacity_; }
  std::uint64_t acquisitions() const { return acquisitions_; }
  // Acquisitions that queued (did not take the uncontended fast path).
  std::uint64_t contended_acquisitions() const { return contended_acquisitions_; }
  SimTime total_wait_ns() const { return total_wait_ns_; }
  // Total time units were held, release-to-release. Exact for capacity 1
  // (locks); FIFO-approximate for pools, where releases are matched to the
  // oldest outstanding acquisition.
  SimTime total_hold_ns() const { return total_hold_ns_; }
  std::size_t peak_queue_depth() const { return peak_queue_depth_; }
  std::size_t queue_depth() const { return waiters_.size(); }
  const std::deque<Waiter>& waiters() const { return waiters_; }
  // Distribution of contended waits (uncontended acquisitions are not
  // recorded: the interesting signal is queueing, not the fast path).
  const LatencyHistogram& wait_histogram() const { return wait_hist_; }
  const LatencyHistogram& hold_histogram() const { return hold_hist_; }

 private:
  friend struct AcquireAwaiter;

  void note_acquired() { hold_starts_.push_back(sim_->now()); }

  // Interned flight-recorder id for this resource's name, resolved lazily on
  // first acquisition so construction order does not pin the id space.
  std::uint64_t flight_id(flight::FlightRecorder* flight) {
    if (flight_name_id_ == kNoFlightId) {
      flight_name_id_ = flight->intern(name_);
    }
    return flight_name_id_;
  }

  static constexpr std::uint64_t kNoFlightId = ~0ull;

  Simulation* sim_;
  std::string name_;
  std::uint32_t capacity_;
  std::uint32_t available_;
  std::deque<Waiter> waiters_;

  std::uint64_t acquisitions_ = 0;
  std::uint64_t contended_acquisitions_ = 0;
  SimTime total_wait_ns_ = 0;
  SimTime total_hold_ns_ = 0;
  std::size_t peak_queue_depth_ = 0;
  std::deque<SimTime> hold_starts_;
  LatencyHistogram wait_hist_;
  LatencyHistogram hold_hist_;
  std::uint64_t flight_name_id_ = kNoFlightId;
};

}  // namespace pvm

#endif  // PVM_SRC_SIM_RESOURCE_H_
