// Slab allocation for the simulator hot path.
//
// The discrete-event core and the shadow-paging engine allocate three kinds
// of objects at very high rate: calendar-queue event slots, shadow page-table
// nodes, and rmap chain nodes. All three are fixed-size, owned by exactly one
// single-threaded component, and churn (allocate/release) far more often than
// they grow. `SlabAllocator<T>` serves them in the arena-per-owner idiom: it
// carves storage out of geometrically-growing slabs, recycles released slots
// through an intrusive free list (O(1), no heap traffic after warm-up), and
// returns every slab to the system in one shot when the owner dies — no
// per-object destructor walk, no fragmentation.
//
// Accounting is first-class: live/high-water-mark/slab counts feed the
// `alloc` section of the pvm.bench.v1 export (opt-in, --alloc-stats), so the
// memory cost of the dual-SPT design is measurable per run.
//
// Debug poisoning: in debug builds (NDEBUG unset) released slots are filled
// with kPoisonByte and verified still-poisoned on reuse, so a use-after-
// release write is detected at the next acquire from that slot (or by an
// explicit debug_verify_free_slots() sweep) instead of silently corrupting a
// later allocation. Sanitizer builds keep the poisoning: the slab owns the
// memory, so reads/writes of free slots are legal for ASan/TSan while the
// pattern check still catches logical reuse bugs.
//
// Not thread-safe by design — every owner (Simulation, PageTable,
// PvmMemoryEngine) is itself thread-confined; pvm::sweep parallelism runs
// whole simulations per thread, never shares one.

#ifndef PVM_SRC_SIM_ARENA_H_
#define PVM_SRC_SIM_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <new>
#include <stdexcept>
#include <utility>
#include <vector>

namespace pvm {

// Allocation accounting for one slab allocator (or an aggregate of several;
// see operator+=). "Live" counts acquired-but-not-released objects.
struct SlabStats {
  std::uint64_t acquired = 0;        // total acquire() calls
  std::uint64_t released = 0;        // total release() calls
  std::uint64_t live = 0;            // acquired - released
  std::uint64_t live_high_water = 0; // max simultaneous live objects
  std::uint64_t slabs = 0;           // slabs currently reserved
  std::uint64_t bytes_reserved = 0;  // total bytes held from the system

  SlabStats& operator+=(const SlabStats& other) {
    acquired += other.acquired;
    released += other.released;
    live += other.live;
    // High-water marks of disjoint allocators did not necessarily coincide,
    // but their sum is the tightest upper bound expressible per aggregate.
    live_high_water += other.live_high_water;
    slabs += other.slabs;
    bytes_reserved += other.bytes_reserved;
    return *this;
  }
};

template <typename T>
class SlabAllocator {
 public:
  static constexpr unsigned char kPoisonByte = 0xD5;

  // `first_slab_objects` sizes the first slab; subsequent slabs double (up
  // to kMaxSlabObjects) so steady-state growth costs O(log n) allocations.
  explicit SlabAllocator(std::size_t first_slab_objects = 16)
      : next_slab_objects_(first_slab_objects == 0 ? 1 : first_slab_objects) {}

  SlabAllocator(const SlabAllocator&) = delete;
  SlabAllocator& operator=(const SlabAllocator&) = delete;
  SlabAllocator(SlabAllocator&&) = default;
  SlabAllocator& operator=(SlabAllocator&&) = default;

  ~SlabAllocator() = default;  // slabs free wholesale; no per-object walk

  // Allocates and constructs one T. O(1): pops the free list or bumps the
  // current slab; grows by one slab when both are empty.
  template <typename... Args>
  T* acquire(Args&&... args) {
    void* slot = take_slot();
    T* object = new (slot) T(std::forward<Args>(args)...);
    ++stats_.acquired;
    if (++stats_.live > stats_.live_high_water) {
      stats_.live_high_water = stats_.live;
    }
    return object;
  }

  // Destroys `object` and recycles its slot (poisoned in debug builds).
  void release(T* object) {
    object->~T();
    ++stats_.released;
    --stats_.live;
    FreeSlot* slot = reinterpret_cast<FreeSlot*>(object);
#ifndef NDEBUG
    std::memset(static_cast<void*>(slot), kPoisonByte, kSlotSize);
#endif
    slot->next = free_list_;
    free_list_ = slot;
#ifndef NDEBUG
    ++free_count_;
#endif
  }

  const SlabStats& stats() const { return stats_; }

  // Debug sweep: checks that every slot on the free list still carries the
  // poison pattern (outside the intrusive next pointer). Returns the number
  // of damaged slots — nonzero means something wrote through a released
  // pointer. Always 0 in NDEBUG builds (no poison is laid down).
  std::size_t debug_verify_free_slots() const {
#ifndef NDEBUG
    std::size_t damaged = 0;
    for (const FreeSlot* slot = free_list_; slot != nullptr; slot = slot->next) {
      const unsigned char* bytes = reinterpret_cast<const unsigned char*>(slot);
      for (std::size_t i = sizeof(FreeSlot*); i < kSlotSize; ++i) {
        if (bytes[i] != kPoisonByte) {
          ++damaged;
          break;
        }
      }
    }
    return damaged;
#else
    return 0;
#endif
  }

 private:
  struct FreeSlot {
    FreeSlot* next;
  };

  // A slot must hold a T or a free-list link, at T's alignment.
  static constexpr std::size_t kSlotSize =
      sizeof(T) > sizeof(FreeSlot) ? sizeof(T) : sizeof(FreeSlot);
  static constexpr std::size_t kSlotAlign =
      alignof(T) > alignof(FreeSlot) ? alignof(T) : alignof(FreeSlot);
  static constexpr std::size_t kMaxSlabObjects = 4096;

  struct Slab {
    std::unique_ptr<std::byte[]> storage;
    std::size_t objects = 0;
  };

  void* take_slot() {
    if (free_list_ != nullptr) {
      FreeSlot* slot = free_list_;
#ifndef NDEBUG
      verify_slot_poison(slot);
      --free_count_;
#endif
      free_list_ = slot->next;
      return slot;
    }
    if (bump_used_ == bump_capacity_) {
      grow();
    }
    void* slot = bump_base_ + bump_used_ * kSlotSize;
    ++bump_used_;
    return slot;
  }

  // Plain new[] storage is aligned to __STDCPP_DEFAULT_NEW_ALIGNMENT__;
  // over-aligned types would need the aligned-new overloads (and a matching
  // deleter), which nothing in this codebase requires.
  static_assert(kSlotAlign <= alignof(std::max_align_t),
                "SlabAllocator does not support over-aligned types");

  void grow() {
    Slab slab;
    slab.objects = next_slab_objects_;
    slab.storage.reset(new std::byte[slab.objects * kSlotSize]);
    bump_base_ = slab.storage.get();
    bump_used_ = 0;
    bump_capacity_ = slab.objects;
    stats_.slabs = slabs_.size() + 1;
    stats_.bytes_reserved += slab.objects * kSlotSize;
    slabs_.push_back(std::move(slab));
    if (next_slab_objects_ < kMaxSlabObjects) {
      next_slab_objects_ *= 2;
    }
  }

#ifndef NDEBUG
  void verify_slot_poison(const FreeSlot* slot) const {
    const unsigned char* bytes = reinterpret_cast<const unsigned char*>(slot);
    for (std::size_t i = sizeof(FreeSlot*); i < kSlotSize; ++i) {
      if (bytes[i] != kPoisonByte) {
        throw std::logic_error(
            "SlabAllocator: poison damaged on reuse — a released object was "
            "written through after release() (use-after-release bug)");
      }
    }
  }
#endif

  std::vector<Slab> slabs_;
  FreeSlot* free_list_ = nullptr;
  std::byte* bump_base_ = nullptr;
  std::size_t bump_used_ = 0;
  std::size_t bump_capacity_ = 0;
  std::size_t next_slab_objects_;
  SlabStats stats_;
#ifndef NDEBUG
  std::size_t free_count_ = 0;
#endif
};

}  // namespace pvm

#endif  // PVM_SRC_SIM_ARENA_H_
