// Deterministic PRNG for workload generation.
//
// xoshiro256++ (Blackman & Vigna): fast, high quality, and — unlike
// std::mt19937 distributions — fully reproducible across standard library
// implementations. All workload generators draw from this so that every
// benchmark run is bit-identical.

#ifndef PVM_SRC_SIM_RANDOM_H_
#define PVM_SRC_SIM_RANDOM_H_

#include <array>
#include <cstdint>

namespace pvm {

class Xoshiro256 {
 public:
  explicit Xoshiro256(std::uint64_t seed) {
    // splitmix64 seeding, as recommended by the xoshiro authors.
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9e3779b97f4a7c15ull;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
      word = z ^ (z >> 31);
    }
  }

  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  // Uniform in [0, bound). bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound) { return next() % bound; }

  // Uniform in [lo, hi] inclusive.
  std::uint64_t next_in(std::uint64_t lo, std::uint64_t hi) {
    return lo + next_below(hi - lo + 1);
  }

  // Uniform double in [0, 1).
  double next_double() { return static_cast<double>(next() >> 11) * 0x1.0p-53; }

  // Bernoulli draw with probability p.
  bool next_bool(double p) { return next_double() < p; }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  std::array<std::uint64_t, 4> state_;
};

}  // namespace pvm

#endif  // PVM_SRC_SIM_RANDOM_H_
