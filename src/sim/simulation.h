// Discrete-event simulation kernel.
//
// The simulation owns a virtual clock in nanoseconds and a time-ordered event
// queue of coroutine resumptions. Simulated work never consumes wall-clock
// time: protocol code charges virtual time with `co_await sim.delay(ns)` and
// models contended structures (mmu_lock, the L0 hypervisor, ...) with
// `Resource` (resource.h). All scheduling is deterministic: ties in time are
// broken by insertion order.

#ifndef PVM_SRC_SIM_SIMULATION_H_
#define PVM_SRC_SIM_SIMULATION_H_

#include <coroutine>
#include <cstdint>
#include <queue>
#include <string>
#include <vector>

#include "src/sim/task.h"

namespace pvm {

// Virtual time in nanoseconds since simulation start.
using SimTime = std::uint64_t;

inline constexpr SimTime kNsPerUs = 1000;
inline constexpr SimTime kNsPerMs = 1000 * 1000;
inline constexpr SimTime kNsPerSec = 1000ull * 1000 * 1000;

class Simulation {
 public:
  Simulation() = default;
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;
  ~Simulation();

  // Current virtual time.
  SimTime now() const { return now_; }

  // Adopts `task` as a root process; it starts when `run()` reaches the
  // current virtual time. The simulation owns the coroutine frame until the
  // simulation itself is destroyed.
  void spawn(Task<void> task);

  // Schedules `handle` to resume at absolute virtual time `when` (>= now).
  // Used by awaitables; not part of the typical user API.
  void schedule(std::coroutine_handle<> handle, SimTime when);

  // Runs until the event queue is empty. Returns the number of events
  // processed. Throws if a root task terminated with an exception.
  std::uint64_t run();

  // Runs until the event queue is empty or virtual time would exceed
  // `deadline`. Events at exactly `deadline` are processed.
  std::uint64_t run_until(SimTime deadline);

  // True if every spawned root task has run to completion. After run(), a
  // false value indicates a deadlock (tasks blocked on resources or awaits
  // that will never fire).
  bool all_tasks_done() const;

  // Number of root tasks still pending.
  std::size_t pending_task_count() const;

  // Total events processed so far.
  std::uint64_t events_processed() const { return events_processed_; }

  // Awaitable: advance virtual time by `ns`.
  struct DelayAwaiter {
    Simulation* sim;
    SimTime delay_ns;

    bool await_ready() const noexcept { return false; }
    template <typename Promise>
    void await_suspend(std::coroutine_handle<Promise> h) noexcept {
      sim->schedule(h, sim->now_ + delay_ns);
    }
    void await_resume() const noexcept {}
  };

  DelayAwaiter delay(SimTime ns) { return DelayAwaiter{this, ns}; }

 private:
  struct Event {
    SimTime when;
    std::uint64_t seq;
    std::coroutine_handle<> handle;

    // Min-heap by (when, seq): earlier time first, FIFO among ties.
    bool operator>(const Event& other) const {
      if (when != other.when) {
        return when > other.when;
      }
      return seq > other.seq;
    }
  };

  void rethrow_failed_roots();

  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t events_processed_ = 0;
  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> queue_;
  std::vector<std::coroutine_handle<TaskPromise<void>>> roots_;
};

}  // namespace pvm

#endif  // PVM_SRC_SIM_SIMULATION_H_
