// Discrete-event simulation kernel.
//
// The simulation owns a virtual clock in nanoseconds and a time-ordered event
// queue of coroutine resumptions. Simulated work never consumes wall-clock
// time: protocol code charges virtual time with `co_await sim.delay(ns)` and
// models contended structures (mmu_lock, the L0 hypervisor, ...) with
// `Resource` (resource.h). All scheduling is deterministic: ties in time are
// broken by the configured SchedulePolicy (FIFO insertion order by default),
// so each (policy, seed) pair explores one reproducible interleaving of
// same-timestamp events — the schedule-exploration surface simcheck sweeps.

#ifndef PVM_SRC_SIM_SIMULATION_H_
#define PVM_SRC_SIM_SIMULATION_H_

#include <coroutine>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "src/sim/event_queue.h"
#include "src/sim/task.h"

namespace pvm {

class Resource;

namespace obs {
class SpanRecorder;
}  // namespace obs

namespace fault {
class FaultInjector;
}  // namespace fault

namespace flight {
class FlightRecorder;
}  // namespace flight

namespace ts {
class Collector;
}  // namespace ts

// Virtual time in nanoseconds since simulation start.
using SimTime = std::uint64_t;

inline constexpr SimTime kNsPerUs = 1000;
inline constexpr SimTime kNsPerMs = 1000 * 1000;
inline constexpr SimTime kNsPerSec = 1000ull * 1000 * 1000;

// Tie-breaking rule among events scheduled for the same virtual time. Every
// policy is a *legal* serialization of the simulated concurrency (time order
// is always respected); FIFO is the historical default, LIFO maximally
// inverts it, and kRandom draws a deterministic per-event priority from the
// schedule seed so each seed explores a different interleaving.
enum class SchedulePolicy { kFifo, kRandom, kLifo };

constexpr std::string_view schedule_policy_name(SchedulePolicy policy) {
  switch (policy) {
    case SchedulePolicy::kFifo:
      return "fifo";
    case SchedulePolicy::kRandom:
      return "random";
    case SchedulePolicy::kLifo:
      return "lifo";
  }
  return "?";
}

class Simulation {
 public:
  Simulation() = default;
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;
  ~Simulation();

  // Current virtual time.
  SimTime now() const { return now_; }

  // Selects the tie-breaking rule for same-timestamp events. Applies to
  // events scheduled from now on; call before spawning work for a fully
  // consistent schedule. (policy, seed) is reproducible bit-for-bit.
  void set_schedule_policy(SchedulePolicy policy, std::uint64_t seed = 0);

  SchedulePolicy schedule_policy() const { return policy_; }
  std::uint64_t schedule_seed() const { return schedule_seed_; }

  // Adopts `task` as a root process; it starts when `run()` reaches the
  // current virtual time. The simulation owns the coroutine frame until the
  // simulation itself is destroyed. `name` labels the task in diagnostics
  // (blocked_report); an empty name becomes "task#<index>".
  void spawn(Task<void> task, std::string name = "");

  // Schedules `handle` to resume at absolute virtual time `when` (>= now).
  // Used by awaitables; not part of the typical user API. The resumption is
  // attributed to the root task currently executing (for deadlock reports);
  // the 3-argument overload attributes it explicitly (used when waking a
  // *different* task's coroutine, e.g. a Resource handing off to a waiter).
  // Inline: this is the simulator's hottest entry point — one call per event
  // — and out-of-line it costs as much as the queue work it wraps.
  void schedule(std::coroutine_handle<> handle, SimTime when) {
    schedule(handle, when, active_root_);
  }
  void schedule(std::coroutine_handle<> handle, SimTime when, std::int64_t root) {
    assert_thread_confined();
    if (when < now_) {
      throw std::logic_error("Simulation::schedule: time went backwards");
    }
    const std::uint64_t seq = next_seq_++;
    queue_.push(SimEvent{when, tie_key(seq), seq, root, handle});
  }

  // Root task (index into spawn order) whose event is currently being
  // executed, or -1 outside run(). Awaitables capture this to attribute
  // waiters to tasks.
  std::int64_t active_root() const { return active_root_; }

  // Name of root task `index` as given to spawn().
  const std::string& root_name(std::size_t index) const { return root_names_.at(index); }

  // Number of root tasks spawned so far.
  std::size_t root_count() const { return root_names_.size(); }

  // Attaches (or detaches, with nullptr) a span recorder. The recorder is
  // bound to this simulation's clock and active-root pointers, so spans open
  // and close on virtual time with per-root-task stacks; instrumented code
  // reads it via spans() and pays one pointer check when none is attached.
  // The recorder must outlive the attachment. Does not enable recording —
  // callers toggle SpanRecorder::set_enabled separately.
  void set_spans(obs::SpanRecorder* spans);
  obs::SpanRecorder* spans() const { return spans_; }

  // Attaches (or detaches, with nullptr) a fault injector, binding it to
  // this simulation's virtual clock so trigger windows evaluate against
  // virtual time. Same contract as set_spans: the injector must outlive the
  // attachment, and instrumented sites pay one pointer check when detached.
  void set_faults(fault::FaultInjector* faults);
  fault::FaultInjector* faults() const { return faults_; }

  // Attaches (or detaches, with nullptr) the black-box flight recorder,
  // binding it to this simulation's clock and active-root pointers so every
  // recorded event carries (virtual time, root task). Unlike spans, the
  // recorder is always on: VirtualPlatform owns one and attaches it at
  // construction. Same lifetime contract as set_spans.
  void set_flight(flight::FlightRecorder* flight);
  flight::FlightRecorder* flight() const { return flight_; }

  // Attaches (or detaches, with nullptr) a time-series collector, binding it
  // to this simulation's virtual clock. If a flight recorder is attached
  // (in either order), its event stream is forwarded into the collector, so
  // every instrumented flight site feeds the time-series for free; direct
  // sites (boot latency, shadow-page gauge) reach it via ts(). Same lifetime
  // contract as set_spans; off by default — benches attach one only when
  // --timeseries is requested, so default runs stay byte-identical.
  void set_ts(ts::Collector* collector);
  ts::Collector* ts() const { return ts_; }

  // Records a recovery-escalation diagnostic (e.g. from the watchdog);
  // appended to blocked_report() so a post-mortem shows what the recovery
  // machinery observed and did before the run wedged or was killed.
  void add_diagnostic(std::string line) { diagnostics_.push_back(std::move(line)); }
  const std::vector<std::string>& diagnostics() const { return diagnostics_; }

  // Live resources, in registration order (used by contention reporting).
  const std::vector<Resource*>& resources() const { return resources_; }

  // Runs until the event queue is empty. Returns the number of events
  // processed. Throws if a root task terminated with an exception.
  std::uint64_t run();

  // Runs until the event queue is empty or virtual time would exceed
  // `deadline`. Events at exactly `deadline` are processed.
  std::uint64_t run_until(SimTime deadline);

  // True if every spawned root task has run to completion. After run(), a
  // false value indicates a deadlock (tasks blocked on resources or awaits
  // that will never fire).
  bool all_tasks_done() const;

  // Number of root tasks still pending.
  std::size_t pending_task_count() const;

  // Human-readable deadlock diagnosis: which root tasks are still pending
  // and which Resource FIFO queues they are parked in. Meaningful after
  // run() returned with !all_tasks_done(); empty string when nothing is
  // pending.
  std::string blocked_report() const;

  // Resource registry (used by blocked_report). Resources register on
  // construction and unregister on destruction.
  void register_resource(Resource* resource);
  void unregister_resource(Resource* resource);

  // Destroys every root coroutine frame (running their destructors, which
  // release any Resources the frames still hold) and drops all queued
  // resumptions. After a deadlocked run, call this while those Resources are
  // still alive — frame destructors touch them, and by the time ~Simulation
  // runs, locally-scoped or member Resources have typically been destroyed.
  void abandon_pending();

  // Total events processed so far.
  std::uint64_t events_processed() const { return events_processed_; }

  // Event-queue internals: calendar shape plus the event-slot slab's
  // live/high-water accounting (feeds the opt-in `alloc` bench export).
  EventQueueStats event_queue_stats() const { return queue_.stats(); }

  // Awaitable: advance virtual time by `ns`.
  struct DelayAwaiter {
    Simulation* sim;
    SimTime delay_ns;

    bool await_ready() const noexcept { return false; }
    template <typename Promise>
    void await_suspend(std::coroutine_handle<Promise> h) noexcept {
      sim->schedule(h, sim->now_ + delay_ns);
    }
    void await_resume() const noexcept {}
  };

  DelayAwaiter delay(SimTime ns) { return DelayAwaiter{this, ns}; }

  // Thread confinement: a Simulation is a single-threaded coroutine kernel
  // with no internal locking — the parallel sweep engine (pvm::sweep) gets
  // its speedup from running *whole simulations* on separate threads, never
  // from sharing one. The first spawn/schedule/run binds the simulation to
  // the calling thread; any later use from a different thread throws. (The
  // binding is first-use, not construction, so a sweep may construct a
  // platform on one thread and hand it to a worker before running it.)
  // Inline so the per-schedule check is one TLS address materialization and
  // compare — std::this_thread::get_id() would be a PLT call per event. The
  // address of a thread_local is unique per live thread, which is exactly
  // the guarantee pthread_self gives (both can recycle after thread exit).
  void assert_thread_confined() const {
    if (owner_key_ != thread_key()) [[unlikely]] {
      bind_or_reject_thread();
    }
  }

 private:
  static const void* thread_key() {
    thread_local char key;
    return &key;
  }

  void bind_or_reject_thread() const;

  std::uint64_t tie_key(std::uint64_t seq) const {
    switch (policy_) {
      case SchedulePolicy::kFifo:
        return seq;
      case SchedulePolicy::kLifo:
        return ~seq;
      case SchedulePolicy::kRandom:
        return random_tie_key(seq);
    }
    return seq;
  }

  std::uint64_t random_tie_key(std::uint64_t seq) const;
  void rethrow_failed_roots();

  // Max same-timestamp events resumed per queue operation (FIFO only).
  static constexpr std::size_t kDispatchBatch = 64;

  // Pops and resumes the front run of same-timestamp events (FIFO) or one
  // event (LIFO/random); returns events dispatched. Exception-safe: an
  // un-dispatched batch tail is re-enqueued before the throw propagates.
  std::size_t dispatch_min_run();

  SimTime now_ = 0;
  mutable const void* owner_key_ = nullptr;  // bound by first use
  std::uint64_t next_seq_ = 0;
  std::uint64_t events_processed_ = 0;
  SchedulePolicy policy_ = SchedulePolicy::kFifo;
  std::uint64_t schedule_seed_ = 0;
  std::int64_t active_root_ = -1;
  // Events pop in (when, tie, seq) order — the identical total order the old
  // binary heap used, held to it by the differential fuzz + golden suites.
  CalendarQueue queue_;
  std::vector<std::coroutine_handle<TaskPromise<void>>> roots_;
  std::vector<std::string> root_names_;
  std::vector<Resource*> resources_;
  std::vector<std::string> diagnostics_;
  obs::SpanRecorder* spans_ = nullptr;
  fault::FaultInjector* faults_ = nullptr;
  flight::FlightRecorder* flight_ = nullptr;
  ts::Collector* ts_ = nullptr;
};

}  // namespace pvm

#endif  // PVM_SRC_SIM_SIMULATION_H_
