#include "src/sim/resource.h"

namespace pvm {

ScopedResource& ScopedResource::operator=(ScopedResource&& other) noexcept {
  if (this != &other) {
    release();
    resource_ = std::exchange(other.resource_, nullptr);
  }
  return *this;
}

ScopedResource::~ScopedResource() { release(); }

void ScopedResource::release() {
  if (resource_ != nullptr) {
    resource_->release();
    resource_ = nullptr;
  }
}

void Resource::release() {
  if (!hold_starts_.empty()) {
    // Match this release to the oldest outstanding acquisition (exact for
    // capacity-1 locks, FIFO-approximate for pools).
    const SimTime held = sim_->now() - hold_starts_.front();
    hold_starts_.pop_front();
    total_hold_ns_ += held;
    hold_hist_.record(held);
  }
  if (!waiters_.empty()) {
    // Hand the unit to the oldest waiter; it resumes at the current virtual
    // time, attributed to *its* root task (not the releaser's). available_
    // stays unchanged: ownership moves directly.
    Waiter next = waiters_.front();
    waiters_.pop_front();
    sim_->schedule(next.handle, sim_->now(), next.root);
    return;
  }
  ++available_;
}

}  // namespace pvm
