#include "src/sim/resource.h"

#include "src/fault/fault.h"

namespace pvm {

ScopedResource& ScopedResource::operator=(ScopedResource&& other) noexcept {
  if (this != &other) {
    release();
    resource_ = std::exchange(other.resource_, nullptr);
  }
  return *this;
}

ScopedResource::~ScopedResource() { release(); }

void ScopedResource::release() {
  if (resource_ != nullptr) {
    resource_->release();
    resource_ = nullptr;
  }
}

void Resource::release() {
  if (flight::FlightRecorder* flight = sim_->flight()) {
    flight->record(flight::EventKind::kLockRelease, flight_id(flight));
  }
  if (!hold_starts_.empty()) {
    // Match this release to the oldest outstanding acquisition (exact for
    // capacity-1 locks, FIFO-approximate for pools).
    const SimTime held = sim_->now() - hold_starts_.front();
    hold_starts_.pop_front();
    total_hold_ns_ += held;
    hold_hist_.record(held);
  }
  if (!waiters_.empty()) {
    // Hand the unit to the oldest waiter; it resumes at the current virtual
    // time, attributed to *its* root task (not the releaser's). available_
    // stays unchanged: ownership moves directly.
    Waiter next = waiters_.front();
    waiters_.pop_front();
    SimTime when = sim_->now();
    if (fault::FaultInjector* faults = sim_->faults(); faults != nullptr) {
      // Injected handoff delay: the waiter owns the unit already (available_
      // untouched), it just resumes late — modelling a preempted lock holder
      // or IPI latency between unlock and wakeup.
      when += faults->lock_handoff_delay(name_);
    }
    sim_->schedule(next.handle, when, next.root);
    return;
  }
  ++available_;
}

}  // namespace pvm
