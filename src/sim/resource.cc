#include "src/sim/resource.h"

namespace pvm {

ScopedResource& ScopedResource::operator=(ScopedResource&& other) noexcept {
  if (this != &other) {
    release();
    resource_ = std::exchange(other.resource_, nullptr);
  }
  return *this;
}

ScopedResource::~ScopedResource() { release(); }

void ScopedResource::release() {
  if (resource_ != nullptr) {
    resource_->release();
    resource_ = nullptr;
  }
}

void Resource::release() {
  if (!waiters_.empty()) {
    // Hand the unit to the oldest waiter; it resumes at the current virtual
    // time, attributed to *its* root task (not the releaser's). available_
    // stays unchanged: ownership moves directly.
    Waiter next = waiters_.front();
    waiters_.pop_front();
    sim_->schedule(next.handle, sim_->now(), next.root);
    return;
  }
  ++available_;
}

}  // namespace pvm
