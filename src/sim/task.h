// Coroutine task type for the discrete-event simulation core.
//
// A `Task<T>` is a lazily-started coroutine. Awaiting it starts the child and
// suspends the parent until the child completes; completion resumes the parent
// via symmetric transfer, so arbitrarily deep protocol call chains (e.g. a page
// fault handler awaiting a world switch awaiting a VMCS sync) cost no stack.
//
// Tasks are single-owner move-only handles. A task spawned at the top level of
// a `Simulation` (see simulation.h) is owned by the simulation until it
// finishes.

#ifndef PVM_SRC_SIM_TASK_H_
#define PVM_SRC_SIM_TASK_H_

#include <cassert>
#include <coroutine>
#include <cstdint>
#include <exception>
#include <utility>

namespace pvm {

class Simulation;

// State shared by every task promise: the owning simulation, the awaiting
// parent coroutine (if any), and a captured exception to rethrow on resume.
struct TaskPromiseBase {
  Simulation* sim = nullptr;
  std::coroutine_handle<> continuation;
  std::exception_ptr exception;

  // On completion, transfer control back to the awaiting parent if there is
  // one; otherwise suspend (a detached/root task whose frame is reclaimed by
  // its owner).
  struct FinalAwaiter {
    bool await_ready() const noexcept { return false; }
    template <typename Promise>
    std::coroutine_handle<> await_suspend(std::coroutine_handle<Promise> h) noexcept {
      auto& promise = h.promise();
      if (promise.continuation) {
        return promise.continuation;
      }
      return std::noop_coroutine();
    }
    void await_resume() const noexcept {}
  };
};

template <typename T>
class Task;

template <typename T>
struct TaskPromise : TaskPromiseBase {
  T value{};

  Task<T> get_return_object();
  std::suspend_always initial_suspend() noexcept { return {}; }
  FinalAwaiter final_suspend() noexcept { return {}; }
  void return_value(T v) { value = std::move(v); }
  void unhandled_exception() { exception = std::current_exception(); }
};

template <>
struct TaskPromise<void> : TaskPromiseBase {
  Task<void> get_return_object();
  std::suspend_always initial_suspend() noexcept { return {}; }
  FinalAwaiter final_suspend() noexcept { return {}; }
  void return_void() {}
  void unhandled_exception() { exception = std::current_exception(); }
};

// A lazily started coroutine returning T. `co_await`ing the task starts it.
template <typename T = void>
class Task {
 public:
  using promise_type = TaskPromise<T>;

  Task() = default;
  explicit Task(std::coroutine_handle<promise_type> handle) : handle_(handle) {}
  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, nullptr)) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = std::exchange(other.handle_, nullptr);
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  bool valid() const { return handle_ != nullptr; }
  bool done() const { return handle_ && handle_.done(); }

  // Awaiting a task: wire the child to the parent's simulation, remember the
  // parent as the continuation, and symmetric-transfer into the child.
  struct Awaiter {
    std::coroutine_handle<promise_type> child;

    bool await_ready() const noexcept { return child == nullptr || child.done(); }
    template <typename ParentPromise>
    std::coroutine_handle<> await_suspend(std::coroutine_handle<ParentPromise> parent) noexcept {
      child.promise().sim = parent.promise().sim;
      child.promise().continuation = parent;
      return child;
    }
    T await_resume() {
      auto& promise = child.promise();
      if (promise.exception) {
        std::rethrow_exception(promise.exception);
      }
      if constexpr (!std::is_void_v<T>) {
        return std::move(promise.value);
      }
    }
  };

  Awaiter operator co_await() && { return Awaiter{handle_}; }

  // Accessors used by the simulation when adopting a root task.
  std::coroutine_handle<promise_type> handle() const { return handle_; }
  std::coroutine_handle<promise_type> release() { return std::exchange(handle_, nullptr); }

 private:
  void destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = nullptr;
    }
  }

  std::coroutine_handle<promise_type> handle_;
};

template <typename T>
Task<T> TaskPromise<T>::get_return_object() {
  return Task<T>(std::coroutine_handle<TaskPromise<T>>::from_promise(*this));
}

inline Task<void> TaskPromise<void>::get_return_object() {
  return Task<void>(std::coroutine_handle<TaskPromise<void>>::from_promise(*this));
}

}  // namespace pvm

#endif  // PVM_SRC_SIM_TASK_H_
