#include "src/fault/watchdog.h"

#include "src/guest/guest_kernel.h"
#include "src/metrics/counters.h"
#include "src/obs/flight.h"

namespace pvm::fault {

namespace {
// Cost of a vCPU reset: save state, flush, re-enter. Charged on the
// watchdog task, not the wedged vCPU (which by definition is not running).
constexpr SimTime kVcpuResetCostNs = 50'000;
}  // namespace

Task<void> Watchdog::run() {
  Simulation& sim = container_->sim();
  CounterSet& counters = platform_->counters();
  while (!stopped_ && !killed_) {
    co_await sim.delay(params_.check_interval_ns);
    if (stopped_ || killed_) {
      co_return;
    }
    const std::size_t n = container_->vcpu_count();
    last_progress_.resize(n, 0);
    stalled_.resize(n, 0);
    for (std::size_t i = 0; i < n && !killed_; ++i) {
      Vcpu& vcpu = container_->vcpu(i);
      if (vcpu.progress != last_progress_[i]) {
        last_progress_[i] = vcpu.progress;
        stalled_[i] = 0;
        continue;
      }
      ++stalled_[i];
      const int vcpu_id = static_cast<int>(i);
      flight::FlightRecorder* flight = sim.flight();
      if (stalled_[i] == params_.kick_after) {
        // Re-inject a timer interrupt. In the simulation this is free: a
        // vCPU that lost a wakeup is modelled as a task parked on a
        // resource, and the kick alone cannot unpark it — but the stage
        // exists so the escalation order matches a real stall handler.
        counters.add(Counter::kWatchdogKick);
        events_.push_back({sim.now(), vcpu_id, "kick"});
        if (flight != nullptr) {
          flight->record(flight::EventKind::kWatchdog, static_cast<std::uint64_t>(vcpu_id),
                         0, 0);
        }
      } else if (stalled_[i] == params_.reset_after) {
        counters.add(Counter::kWatchdogReset);
        events_.push_back({sim.now(), vcpu_id, "reset"});
        if (flight != nullptr) {
          flight->record(flight::EventKind::kWatchdog, static_cast<std::uint64_t>(vcpu_id),
                         0, 1);
        }
        vcpu.tlb.flush_all();
        co_await sim.delay(kVcpuResetCostNs);
      } else if (stalled_[i] == params_.kill_after) {
        counters.add(Counter::kWatchdogKill);
        events_.push_back({sim.now(), vcpu_id, "kill"});
        if (flight != nullptr) {
          flight->record(flight::EventKind::kWatchdog, static_cast<std::uint64_t>(vcpu_id),
                         0, 2);
        }
        co_await kill_container(vcpu, vcpu_id);
      }
    }
  }
}

Task<void> Watchdog::kill_container(Vcpu& vcpu, int wedged_vcpu) {
  killed_ = true;
  container_->sim().add_diagnostic(
      "watchdog: killed container '" + container_->name() + "' (vcpu " +
      std::to_string(wedged_vcpu) + " made no progress through kick and reset)");
  // Black-box dump at the moment of death, before the teardown below floods
  // the rings with OOM-kill traffic and wraps the escalation markers out.
  if (flight::FlightRecorder* flight = container_->sim().flight()) {
    const std::string reason = "watchdog kill: container '" + container_->name() +
                               "', vcpu " + std::to_string(wedged_vcpu) + " stalled";
    postmortem_text_ = flight::render_flight_timeline(*flight, &container_->sim());
    postmortem_json_ =
        flight::render_postmortem_json(*flight, &container_->sim(), reason, "");
  }
  GuestKernel& kernel = container_->kernel();
  // Snapshot the process list before tearing anything down: oom_kill_process
  // suspends, and the list must not be re-walked through an iterator that a
  // concurrent exit could invalidate.
  std::vector<GuestProcess*> victims;
  for (const auto& proc : kernel.processes()) {
    if (!proc->oom_killed()) {
      victims.push_back(proc.get());
    }
  }
  for (GuestProcess* victim : victims) {
    if (!victim->oom_killed()) {
      co_await kernel.oom_kill_process(vcpu, *victim);
    }
  }
}

}  // namespace pvm::fault
