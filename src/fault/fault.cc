#include "src/fault/fault.h"

#include <stdexcept>

#include "src/sim/simulation.h"

namespace pvm::fault {

namespace {

FaultSpec make_spec(FaultKind kind, std::string target, double probability,
                    std::uint64_t delay_ns = 0) {
  FaultSpec spec;
  spec.kind = kind;
  spec.target = std::move(target);
  spec.trigger.probability = probability;
  spec.delay_ns = delay_ns;
  return spec;
}

}  // namespace

FaultPlan FaultPlan::preset(std::string_view name) {
  FaultPlan plan;
  plan.name = std::string(name);
  if (name == "none") {
    return plan;
  }
  if (name == "bootstorm") {
    // The Fig. 12 high-density scenario: the host has enough memory for the
    // paper's 100-container point but not its 150-container point, and the
    // boot storm contends the per-L1 mmu_lock. The L1 GPA ceiling binds only
    // the *nested* schemes (the "l1-instance" allocators); bare-metal
    // containers allocate host frames directly and are untouched, mirroring
    // the paper's BM rows surviving where kvm-ept (NST) crashes.
    FaultSpec ceiling;
    ceiling.kind = FaultKind::kFrameExhaust;
    ceiling.target = "l1-instance";
    ceiling.capacity_frames = 6500;
    plan.specs.push_back(ceiling);
    plan.specs.push_back(
        make_spec(FaultKind::kLockHandoffDelay, "l0_mmu_lock", 0.25, 3 * kNsPerUs));
    plan.specs.push_back(
        make_spec(FaultKind::kExitLatencySpike, "l1-instance", 0.05, 2 * kNsPerUs));
    FaultSpec resume = make_spec(FaultKind::kVmresumeFail, "l1-instance", 0.02);
    resume.fail_count = 2;
    plan.specs.push_back(resume);
    return plan;
  }
  if (name == "latency") {
    // Host-side jitter only: every exit can spike, VMRESUME occasionally
    // needs a relaunch. No resource exhaustion.
    plan.specs.push_back(
        make_spec(FaultKind::kExitLatencySpike, "", 0.1, 5 * kNsPerUs));
    FaultSpec resume = make_spec(FaultKind::kVmresumeFail, "", 0.05);
    resume.fail_count = 3;
    plan.specs.push_back(resume);
    return plan;
  }
  if (name == "allocpressure") {
    // Transient allocation refusals everywhere an injector is wired;
    // exercises the reclaim and guest OOM-kill paths without a hard ceiling.
    plan.specs.push_back(make_spec(FaultKind::kFramePressure, "", 0.05));
    return plan;
  }
  if (name == "migration-stall" || name == "migration_stall") {
    // One preset, two historical spellings: the CLI always used the dashed
    // form while the FaultKind label is underscored. Accept both, emit one.
    plan.name = "migration-stall";
    plan.specs.push_back(
        make_spec(FaultKind::kMigrationStall, "", 0.25, 500 * kNsPerUs));
    return plan;
  }
  if (name == "walcrash") {
    // Crash-consistency torture: the first WAL append past 1 ms dies
    // mid-payload, and a later one dies mid-header. Recovery must truncate
    // the torn tail and replay the surviving prefix to a coherent state.
    FaultSpec torn = make_spec(FaultKind::kWalTornWrite, "wal", 1.0);
    torn.trigger.after_ns = 1 * kNsPerMs;
    torn.trigger.at_op = 1;
    plan.specs.push_back(torn);
    FaultSpec partial = make_spec(FaultKind::kWalPartialAppend, "wal", 1.0);
    partial.trigger.after_ns = 2 * kNsPerMs;
    partial.trigger.at_op = 1;
    plan.specs.push_back(partial);
    return plan;
  }
  throw std::invalid_argument("unknown fault plan preset: " + plan.name);
}

FaultPlan FaultPlan::parse(std::string_view text) {
  std::string_view name = text;
  std::uint64_t seed = 1;
  std::uint64_t cap = 0;
  if (const auto colon = text.find(':'); colon != std::string_view::npos) {
    name = text.substr(0, colon);
    std::string_view rest = text.substr(colon + 1);
    while (!rest.empty()) {
      std::string_view param = rest;
      if (const auto next = rest.find(':'); next != std::string_view::npos) {
        param = rest.substr(0, next);
        rest = rest.substr(next + 1);
      } else {
        rest = {};
      }
      constexpr std::string_view kSeedKey = "seed=";
      constexpr std::string_view kCapKey = "cap=";
      if (param.substr(0, kSeedKey.size()) == kSeedKey) {
        seed = std::stoull(std::string(param.substr(kSeedKey.size())));
      } else if (param.substr(0, kCapKey.size()) == kCapKey) {
        cap = std::stoull(std::string(param.substr(kCapKey.size())));
      } else {
        throw std::invalid_argument(
            "fault plan syntax: expected '<preset>[:seed=N][:cap=F]', got '" +
            std::string(text) + "'");
      }
    }
  }
  FaultPlan plan = preset(name);
  plan.seed = seed;
  if (cap > 0) {
    // Override every frame-exhaust ceiling in the preset: the fleet layer
    // scales the exhausted-host pressure point without minting one preset
    // per scenario size.
    for (FaultSpec& spec : plan.specs) {
      if (spec.kind == FaultKind::kFrameExhaust) {
        spec.capacity_frames = cap;
      }
    }
  }
  return plan;
}

std::vector<std::string_view> FaultPlan::preset_names() {
  return {"none", "bootstorm", "latency", "allocpressure", "migration-stall", "walcrash"};
}

}  // namespace pvm::fault
