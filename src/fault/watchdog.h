// Per-vCPU watchdog: detects wedged vCPUs and escalates recovery.
//
// A real PVM host runs a soft-lockup watchdog inside the guest and a vCPU
// stall detector in the hypervisor; here both collapse into one deterministic
// simulation task per container. Every `check_interval_ns` of virtual time
// the watchdog samples each vCPU's `progress` counter (bumped by the guest
// kernel on every entry point). A vCPU whose counter has not moved for N
// consecutive checks escalates through three stages, in order:
//
//   kick  (re-inject a timer interrupt; cheap, often enough for a vCPU
//          that merely lost a wakeup),
//   reset (flush the vCPU's TLB and charge a reset cost; recovers state
//          corruption but not a task parked on a dead lock),
//   kill  (OOM-kill every process in the container and mark it failed;
//          the container is gone but the host survives).
//
// Escalations are recorded in an ordered event log (tests assert the
// kick -> reset -> kill order) and in Counter::kWatchdog{Kick,Reset,Kill};
// a kill also appends a line to Simulation::diagnostics() so it surfaces in
// blocked_report().

#ifndef PVM_SRC_FAULT_WATCHDOG_H_
#define PVM_SRC_FAULT_WATCHDOG_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/backends/platform.h"
#include "src/sim/simulation.h"
#include "src/sim/task.h"

namespace pvm::fault {

struct WatchdogParams {
  SimTime check_interval_ns = 10'000'000;  // 10 ms of virtual time
  // Consecutive stalled checks before each escalation stage fires. Each
  // stage fires exactly once per stall episode (when the count equals the
  // threshold); any progress resets the count and re-arms all stages.
  int kick_after = 2;
  int reset_after = 4;
  int kill_after = 6;
};

class Watchdog {
 public:
  struct Event {
    SimTime when = 0;
    int vcpu = 0;
    std::string action;  // "kick", "reset", or "kill"
  };

  Watchdog(VirtualPlatform& platform, SecureContainer& container,
           WatchdogParams params = {})
      : platform_(&platform), container_(&container), params_(params) {}

  // The watchdog task; spawn it on the simulation alongside the workload.
  // Runs until stop() or until it kills the container.
  Task<void> run();

  // Call when the workload completes so an idle (not wedged) container is
  // not escalated against.
  void stop() { stopped_ = true; }

  bool killed() const { return killed_; }
  const std::vector<Event>& events() const { return events_; }

  // Postmortem dump rendered at kill time from the platform's flight
  // recorder: the interleaved timeline of the last events per track, and the
  // pvm.postmortem.v1 JSON document. Empty until killed() is true.
  const std::string& postmortem_text() const { return postmortem_text_; }
  const std::string& postmortem_json() const { return postmortem_json_; }

 private:
  Task<void> kill_container(Vcpu& vcpu, int wedged_vcpu);

  VirtualPlatform* platform_;
  SecureContainer* container_;
  WatchdogParams params_;
  std::vector<std::uint64_t> last_progress_;
  std::vector<int> stalled_;
  std::vector<Event> events_;
  std::string postmortem_text_;
  std::string postmortem_json_;
  bool stopped_ = false;
  bool killed_ = false;
};

}  // namespace pvm::fault

#endif  // PVM_SRC_FAULT_WATCHDOG_H_
