// Deterministic fault injection.
//
// A FaultPlan is a list of FaultSpecs: each names a fault kind, a target-site
// substring, and a Trigger (probability / virtual-time window / op-count).
// The FaultInjector evaluates specs at instrumented sites spread across the
// stack — frame allocators, Resource lock handoff, L0 exit paths, VMRESUME,
// migration rounds, and the shadow-paging engine — drawing from one seeded
// Xoshiro256 stream so a (plan, seed, schedule) triple replays bit-for-bit.
//
// Wiring follows the pvm::obs pattern: sites hold a raw FaultInjector
// pointer, defaulting to nullptr, and pay exactly one pointer check when no
// injector is attached. Everything here is header-only so the low-level
// layers (arch, sim) can include it without a link dependency; only plan
// presets/parsing live in fault.cc.

#ifndef PVM_SRC_FAULT_FAULT_H_
#define PVM_SRC_FAULT_FAULT_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/sim/random.h"

namespace pvm::fault {

enum class FaultKind {
  kFrameExhaust,      // allocator refuses once occupancy reaches capacity_frames
  kFramePressure,     // allocator refuses probabilistically (transient pressure)
  kExitLatencySpike,  // extra ns on an L0 exit round trip
  kVmresumeFail,      // transient VMRESUME failure; L0 retries the launch
  kMigrationStall,    // a pre-copy round stalls and makes no progress
  kLockHandoffDelay,  // extra ns between a lock release and the waiter running
  kSpuriousSptInval,  // shadow fill observes a concurrent (phantom) invalidation
  kWalTornWrite,      // WAL append dies mid-payload; a torn tail survives
  kWalPartialAppend,  // WAL append dies mid-header; not even the frame lands
  kCount,
};

constexpr std::string_view fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kFrameExhaust:
      return "frame_exhaust";
    case FaultKind::kFramePressure:
      return "frame_pressure";
    case FaultKind::kExitLatencySpike:
      return "exit_latency_spike";
    case FaultKind::kVmresumeFail:
      return "vmresume_fail";
    case FaultKind::kMigrationStall:
      return "migration_stall";
    case FaultKind::kLockHandoffDelay:
      return "lock_handoff_delay";
    case FaultKind::kSpuriousSptInval:
      return "spurious_spt_inval";
    case FaultKind::kWalTornWrite:
      return "wal_torn_write";
    case FaultKind::kWalPartialAppend:
      return "wal_partial_append";
    case FaultKind::kCount:
      break;
  }
  return "?";
}

// When a spec fires. Probability is evaluated per *opportunity* (each hook
// call whose site matches `target` inside the time window); at_op/every_op
// count those opportunities instead, for exactly-reproducible single shots.
struct Trigger {
  double probability = 1.0;
  std::uint64_t after_ns = 0;
  std::uint64_t until_ns = ~0ull;
  std::uint64_t at_op = 0;    // if nonzero: fire exactly on this opportunity
  std::uint64_t every_op = 0; // if nonzero: fire on every Nth opportunity
};

struct FaultSpec {
  FaultKind kind = FaultKind::kFramePressure;
  std::string target;  // substring match against the site name; empty = any
  Trigger trigger;
  std::uint64_t delay_ns = 0;         // spike/stall/handoff kinds
  std::uint64_t capacity_frames = 0;  // kFrameExhaust occupancy ceiling
  int fail_count = 1;                 // kVmresumeFail: consecutive failures
};

struct FaultPlan {
  std::string name = "none";
  std::uint64_t seed = 1;
  std::vector<FaultSpec> specs;

  bool empty() const { return specs.empty(); }

  // Named presets: "none", "bootstorm", "latency", "allocpressure",
  // "migration-stall". Throws std::invalid_argument on an unknown name.
  static FaultPlan preset(std::string_view name);

  // "<preset>" or "<preset>:seed=N". The CLI surface behind --faults.
  static FaultPlan parse(std::string_view text);

  // Known preset names, for --help text.
  static std::vector<std::string_view> preset_names();
};

class FaultInjector {
 public:
  FaultInjector() = default;
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  // Binds the injector to a virtual clock (Simulation::set_faults does this).
  // Unbound, every trigger window is evaluated at t=0.
  void bind(const std::uint64_t* now) { now_ = now; }

  void arm(FaultPlan plan) {
    plan_ = std::move(plan);
    rng_ = Xoshiro256(plan_.seed);
    opportunities_.assign(plan_.specs.size(), 0);
    fired_.assign(static_cast<std::size_t>(FaultKind::kCount), 0);
  }

  bool armed() const { return !plan_.specs.empty(); }
  const FaultPlan& plan() const { return plan_; }

  std::uint64_t fired(FaultKind kind) const {
    const auto i = static_cast<std::size_t>(kind);
    return i < fired_.size() ? fired_[i] : 0;
  }
  std::uint64_t total_fired() const {
    std::uint64_t total = 0;
    for (const std::uint64_t n : fired_) {
      total += n;
    }
    return total;
  }

  // ---- Site hooks ----
  // Each hook is called with the site's name; the injector walks the plan's
  // matching specs. Hooks are cheap when disarmed but callers should still
  // guard with a null pointer check so the disarmed path costs one branch.

  // FrameAllocator::allocate: returns true if the allocation must fail.
  // `allocated` is the allocator's current occupancy (kFrameExhaust caps it).
  bool frame_alloc_blocked(const std::string& site, std::uint64_t allocated) {
    for (std::size_t i = 0; i < plan_.specs.size(); ++i) {
      const FaultSpec& spec = plan_.specs[i];
      if (spec.kind == FaultKind::kFrameExhaust) {
        if (allocated < spec.capacity_frames) {
          continue;
        }
        if (fires(i, site)) {
          return true;
        }
      } else if (spec.kind == FaultKind::kFramePressure) {
        if (fires(i, site)) {
          return true;
        }
      }
    }
    return false;
  }

  // Resource::release: extra ns before the next waiter resumes.
  std::uint64_t lock_handoff_delay(const std::string& site) {
    return delay_hook(FaultKind::kLockHandoffDelay, site);
  }

  // L0 exit round trip: extra ns of host-side latency.
  std::uint64_t exit_latency_spike(const std::string& site) {
    return delay_hook(FaultKind::kExitLatencySpike, site);
  }

  // One pre-copy round stalls for the returned extra ns (0 = no stall).
  std::uint64_t migration_stall(const std::string& site) {
    return delay_hook(FaultKind::kMigrationStall, site);
  }

  // VMRESUME: true if this launch attempt fails. attempt 0 rolls the
  // trigger; attempts 1..fail_count-1 extend the same failure burst
  // deterministically (the caller stops retrying at the first success).
  bool vmresume_fails(const std::string& site, int attempt) {
    for (std::size_t i = 0; i < plan_.specs.size(); ++i) {
      const FaultSpec& spec = plan_.specs[i];
      if (spec.kind != FaultKind::kVmresumeFail || !matches(spec, site)) {
        continue;
      }
      if (attempt > 0) {
        if (attempt < spec.fail_count) {
          count(spec.kind);
          return true;
        }
        continue;
      }
      if (fires(i, site)) {
        return true;
      }
    }
    return false;
  }

  // Shadow fill: true if the fill must behave as if a concurrent
  // invalidation raced it (abort and let the access retry).
  bool spurious_spt_inval(const std::string& site) {
    for (std::size_t i = 0; i < plan_.specs.size(); ++i) {
      if (plan_.specs[i].kind == FaultKind::kSpuriousSptInval && fires(i, site)) {
        return true;
      }
    }
    return false;
  }

  // wal::Log::append: returns how many tail bytes of the frame being
  // appended are lost to a crash (0 = append lands intact). kWalTornWrite
  // drops half the payload — the header survives, the checksum cannot —
  // while kWalPartialAppend drops everything past the first half of the
  // frame header, leaving a short frame. Both are deterministic functions
  // of `record_size`, so a (plan, seed) pair tears byte-identically.
  std::uint64_t wal_torn_bytes(const std::string& site, std::uint64_t record_size) {
    for (std::size_t i = 0; i < plan_.specs.size(); ++i) {
      const FaultKind kind = plan_.specs[i].kind;
      if (kind == FaultKind::kWalTornWrite && fires(i, site)) {
        const std::uint64_t keep = record_size / 2 + 1;
        return record_size > keep ? record_size - keep : 1;
      }
      if (kind == FaultKind::kWalPartialAppend && fires(i, site)) {
        return record_size > 14 ? record_size - 14 : record_size;
      }
    }
    return 0;
  }

 private:
  bool matches(const FaultSpec& spec, const std::string& site) const {
    if (!spec.target.empty() && site.find(spec.target) == std::string::npos) {
      return false;
    }
    const std::uint64_t t = now_ != nullptr ? *now_ : 0;
    return t >= spec.trigger.after_ns && t <= spec.trigger.until_ns;
  }

  // Counts an opportunity against spec `i` and decides whether it fires.
  bool fires(std::size_t i, const std::string& site) {
    const FaultSpec& spec = plan_.specs[i];
    if (!matches(spec, site)) {
      return false;
    }
    const std::uint64_t op = ++opportunities_[i];
    bool hit;
    if (spec.trigger.at_op > 0) {
      hit = op == spec.trigger.at_op;
    } else if (spec.trigger.every_op > 0) {
      hit = op % spec.trigger.every_op == 0;
    } else if (spec.trigger.probability >= 1.0) {
      hit = true;
    } else if (spec.trigger.probability <= 0.0) {
      hit = false;
    } else {
      hit = rng_.next_double() < spec.trigger.probability;
    }
    if (hit) {
      count(spec.kind);
    }
    return hit;
  }

  std::uint64_t delay_hook(FaultKind kind, const std::string& site) {
    std::uint64_t total = 0;
    for (std::size_t i = 0; i < plan_.specs.size(); ++i) {
      if (plan_.specs[i].kind == kind && fires(i, site)) {
        total += plan_.specs[i].delay_ns;
      }
    }
    return total;
  }

  void count(FaultKind kind) { ++fired_[static_cast<std::size_t>(kind)]; }

  const std::uint64_t* now_ = nullptr;
  FaultPlan plan_;
  Xoshiro256 rng_{1};
  std::vector<std::uint64_t> opportunities_;  // per-spec, matched calls
  std::vector<std::uint64_t> fired_;          // per-kind
};

}  // namespace pvm::fault

#endif  // PVM_SRC_FAULT_FAULT_H_
