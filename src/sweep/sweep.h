// pvm::sweep — parallel scenario-matrix execution with deterministic merge.
//
// The evaluation surface of this repo is a configuration matrix (deployment
// mode x workload x fault plan x schedule policy x seed), and each cell is
// one isolated single-threaded `Simulation`: no cell shares mutable state
// with another, so the matrix is embarrassingly parallel. This engine runs
// the cells on a pool of worker threads and merges results **by job index,
// never by completion order**, so the output of a parallel run is
// byte-identical to the serial run — parallelism changes wall-clock time
// and nothing else. Consumers: `simcheck --jobs N` and the `pvm-matrix`
// tool; Simulation itself stays single-threaded and enforces that with a
// thread-confinement guard (simulation.h).

#ifndef PVM_SRC_SWEEP_SWEEP_H_
#define PVM_SRC_SWEEP_SWEEP_H_

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <thread>
#include <vector>

namespace pvm::sweep {

// Number of worker threads a `--jobs N` request actually gets: at least 1,
// and never more than the job count a caller passes to the run functions.
int effective_jobs(int requested);

// `--jobs 0` convention: one worker per hardware thread.
int default_jobs();

// Runs body(0) .. body(count-1), each exactly once, on up to `jobs` worker
// threads (inline on the calling thread when jobs <= 1). Jobs are claimed
// from a shared cursor, so completion order is nondeterministic — callers
// must write results into per-index slots and merge in index order. If any
// body throws, every worker finishes its current job, remaining jobs are
// abandoned, and the exception of the *lowest-indexed* failed job is
// rethrown on the calling thread (lowest index, not first-in-time, so the
// error a caller sees does not depend on thread timing).
void parallel_for(std::size_t count, int jobs, const std::function<void(std::size_t)>& body);

// parallel_for with results: runs fn over [0, count) and returns the values
// in index order regardless of which worker computed them when. R must be
// default-constructible and movable.
template <typename R>
std::vector<R> run_indexed(std::size_t count, int jobs,
                           const std::function<R(std::size_t)>& fn) {
  std::vector<R> results(count);
  parallel_for(count, jobs, [&](std::size_t i) { results[i] = fn(i); });
  return results;
}

// Wall-clock accounting for a sweep. Wall time is the only nondeterministic
// quantity a sweep produces, so it is kept in this side-band struct and the
// deterministic report/JSON documents never embed it by default.
struct SweepTiming {
  int jobs = 1;
  std::size_t cells = 0;
  std::uint64_t events = 0;  // simulation events processed, summed over cells
  double wall_seconds = 0.0;

  double cells_per_second() const {
    return wall_seconds > 0.0 ? static_cast<double>(cells) / wall_seconds : 0.0;
  }

  // Wall-clock simulator throughput: the headline number benchdiff gates the
  // simulator-core overhaul on.
  double events_per_second() const {
    return wall_seconds > 0.0 ? static_cast<double>(events) / wall_seconds : 0.0;
  }
};

class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}
  double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - start_).count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace pvm::sweep

#endif  // PVM_SRC_SWEEP_SWEEP_H_
