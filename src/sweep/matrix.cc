#include "src/sweep/matrix.h"

#include "src/obs/json.h"

namespace pvm::sweep {

std::vector<MatrixCell> enumerate_matrix(const MatrixSpec& spec) {
  std::vector<MatrixCell> cells;
  cells.reserve(spec.cell_count());
  for (const DeployMode mode : spec.modes) {
    for (const std::string& workload : spec.workloads) {
      for (const std::string& plan : spec.fault_plans) {
        for (const SchedulePolicy policy : spec.policies) {
          for (int s = 0; s < spec.seeds; ++s) {
            MatrixCell cell;
            cell.index = cells.size();
            cell.mode = mode;
            cell.workload = workload;
            cell.fault_plan = plan;
            cell.policy = policy;
            cell.seed = spec.first_seed + static_cast<std::uint64_t>(s);
            cells.push_back(std::move(cell));
          }
        }
      }
    }
  }
  return cells;
}

std::vector<CellResult> run_matrix(const MatrixSpec& spec, int jobs, const CellRunner& runner,
                                   SweepTiming* timing) {
  const std::vector<MatrixCell> cells = enumerate_matrix(spec);
  Stopwatch stopwatch;
  std::vector<CellResult> results =
      run_indexed<CellResult>(cells.size(), jobs, [&](std::size_t i) { return runner(cells[i]); });
  if (timing != nullptr) {
    timing->jobs = effective_jobs(jobs);
    timing->cells = cells.size();
    timing->wall_seconds = stopwatch.seconds();
    timing->events = 0;
    for (const CellResult& result : results) {
      timing->events += result.events;
    }
  }
  return results;
}

std::string render_matrix_json(const MatrixSpec& spec, const std::vector<CellResult>& cells,
                               const SweepTiming* timing) {
  const std::vector<MatrixCell> coordinates = enumerate_matrix(spec);
  obs::JsonWriter w;
  w.begin_object();
  w.key("schema").value(kMatrixSchemaVersion);

  w.key("spec").begin_object();
  w.key("modes").begin_array();
  for (const DeployMode mode : spec.modes) {
    w.value(deploy_mode_token(mode));
  }
  w.end_array();
  w.key("workloads").begin_array();
  for (const std::string& workload : spec.workloads) {
    w.value(workload);
  }
  w.end_array();
  w.key("fault_plans").begin_array();
  for (const std::string& plan : spec.fault_plans) {
    w.value(plan);
  }
  w.end_array();
  w.key("policies").begin_array();
  for (const SchedulePolicy policy : spec.policies) {
    w.value(schedule_policy_name(policy));
  }
  w.end_array();
  w.key("seeds").value(static_cast<std::int64_t>(spec.seeds));
  w.key("first_seed").value(static_cast<std::uint64_t>(spec.first_seed));
  w.end_object();

  w.key("cells").begin_array();
  for (std::size_t i = 0; i < coordinates.size() && i < cells.size(); ++i) {
    const MatrixCell& cell = coordinates[i];
    const CellResult& result = cells[i];
    w.begin_object();
    w.key("index").value(static_cast<std::uint64_t>(cell.index));
    w.key("mode").value(deploy_mode_token(cell.mode));
    w.key("workload").value(cell.workload);
    w.key("fault_plan").value(cell.fault_plan);
    w.key("policy").value(schedule_policy_name(cell.policy));
    w.key("seed").value(cell.seed);
    w.key("ok").value(result.ok);
    if (!result.ok) {
      w.key("error").value(result.error);
    }
    if (!result.bench_json.empty()) {
      w.key("bench").raw(result.bench_json);
    }
    w.end_object();
  }
  w.end_array();

  if (timing != nullptr) {
    w.key("timing").begin_object();
    w.key("jobs").value(static_cast<std::int64_t>(timing->jobs));
    w.key("cells").value(static_cast<std::uint64_t>(timing->cells));
    w.key("events").value(timing->events);
    w.key("wall_seconds").value(timing->wall_seconds);
    w.key("cells_per_second").value(timing->cells_per_second());
    w.key("events_per_second").value(timing->events_per_second());
    w.end_object();
  }
  w.end_object();
  return w.str();
}

}  // namespace pvm::sweep
