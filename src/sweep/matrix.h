// Declarative scenario matrix: the cross-product
//
//   deployment mode x workload x fault plan x schedule policy x seed
//
// enumerated in a fixed row-major order (modes outermost, seeds innermost),
// so a cell's flat index — and therefore the merged document — is a pure
// function of the spec, independent of how many worker threads ran it.
//
// The matrix engine is workload-agnostic: a CellRunner callback produces
// each cell's payload (pvm-matrix wires it to the bench library entry
// points, tests wire it to stubs). The rendered document is versioned
// ("pvm.matrix.v1"): per-cell coordinates plus the cell's embedded
// pvm.bench.v1 export, serialized with the deterministic JSON writer. Wall
// clock / throughput live in an optional `timing` object that callers add
// explicitly (pvm-matrix's --timing) because it is the one nondeterministic
// quantity — without it, parallel and serial documents are byte-identical.

#ifndef PVM_SRC_SWEEP_MATRIX_H_
#define PVM_SRC_SWEEP_MATRIX_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/backends/config.h"
#include "src/sim/simulation.h"
#include "src/sweep/sweep.h"

namespace pvm::sweep {

inline constexpr const char* kMatrixSchemaVersion = "pvm.matrix.v1";

struct MatrixSpec {
  std::vector<DeployMode> modes;
  std::vector<std::string> workloads;    // bench-entry names ("switch", ...)
  std::vector<std::string> fault_plans;  // fault::FaultPlan::parse specs; "none" = off
  std::vector<SchedulePolicy> policies;
  int seeds = 1;
  std::uint64_t first_seed = 1;

  std::size_t cell_count() const {
    return modes.size() * workloads.size() * fault_plans.size() * policies.size() *
           static_cast<std::size_t>(seeds > 0 ? seeds : 0);
  }
};

// One cell's coordinates in the matrix.
struct MatrixCell {
  std::size_t index = 0;  // flat row-major index (the merge key)
  DeployMode mode = DeployMode::kPvmNst;
  std::string workload;
  std::string fault_plan;
  SchedulePolicy policy = SchedulePolicy::kFifo;
  std::uint64_t seed = 0;
};

// What a CellRunner returns: the cell's pvm.bench.v1 export (pre-serialized
// — the runner's platform dies with the cell) and a success flag. A failed
// cell keeps its slot in the document with ok=false and the error text, so
// one bad cell cannot shift the indices of the others.
struct CellResult {
  bool ok = true;
  std::string error;
  std::string bench_json;  // pvm.bench.v1 document; empty when !ok
  // Optional pvm.timeseries.v1 document for the cell (pvm-matrix
  // --timeseries). Not part of the matrix document: the driver merges the
  // cell documents in index order into one export, so the merged output is
  // byte-identical between --jobs 1 and --jobs N.
  std::string ts_json;
  // Optional pvm.profile.v1 document for the cell (pvm-matrix --profile),
  // merged by the driver under the same index-order discipline as ts_json.
  std::string profile_json;
  // Simulation events the cell processed (deterministic; also present inside
  // bench_json). Summed into SweepTiming::events for events/sec reporting.
  std::uint64_t events = 0;
};

using CellRunner = std::function<CellResult(const MatrixCell&)>;

// The spec's cells in flat index order.
std::vector<MatrixCell> enumerate_matrix(const MatrixSpec& spec);

// Runs every cell on up to `jobs` workers and returns results in cell-index
// order (deterministic merge). `timing`, when non-null, receives the
// wall-clock accounting for the whole sweep.
std::vector<CellResult> run_matrix(const MatrixSpec& spec, int jobs, const CellRunner& runner,
                                   SweepTiming* timing = nullptr);

// Renders the versioned matrix document. `timing` non-null embeds the
// nondeterministic `timing` object (jobs / wall_seconds / cells_per_second);
// pass null for byte-reproducible output.
std::string render_matrix_json(const MatrixSpec& spec, const std::vector<CellResult>& cells,
                               const SweepTiming* timing = nullptr);

}  // namespace pvm::sweep

#endif  // PVM_SRC_SWEEP_MATRIX_H_
