#include "src/sweep/sweep.h"

#include <algorithm>
#include <mutex>

namespace pvm::sweep {

int effective_jobs(int requested) { return std::max(1, requested); }

int default_jobs() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

void parallel_for(std::size_t count, int jobs,
                  const std::function<void(std::size_t)>& body) {
  if (count == 0) {
    return;
  }
  const std::size_t workers = std::min<std::size_t>(
      static_cast<std::size_t>(effective_jobs(jobs)), count);
  if (workers <= 1) {
    for (std::size_t i = 0; i < count; ++i) {
      body(i);
    }
    return;
  }

  std::atomic<std::size_t> cursor{0};
  // Lowest failed job index + its exception; the index tiebreak makes the
  // rethrown error independent of worker timing.
  std::mutex failure_mutex;
  std::size_t failed_index = count;
  std::exception_ptr failure;
  std::atomic<bool> abort{false};

  const auto worker = [&] {
    while (!abort.load(std::memory_order_relaxed)) {
      const std::size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) {
        return;
      }
      try {
        body(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(failure_mutex);
        if (i < failed_index) {
          failed_index = i;
          failure = std::current_exception();
        }
        abort.store(true, std::memory_order_relaxed);
      }
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(workers - 1);
  for (std::size_t t = 1; t < workers; ++t) {
    threads.emplace_back(worker);
  }
  worker();  // the calling thread is worker 0
  for (std::thread& thread : threads) {
    thread.join();
  }
  if (failure != nullptr) {
    std::rethrow_exception(failure);
  }
}

}  // namespace pvm::sweep
