#include "src/metrics/table.h"

#include <cstdio>
#include <sstream>

namespace pvm {

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {}

void TextTable::add_row(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

std::string TextTable::cell(double value, int precision) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", precision, value);
  return buffer;
}

std::string TextTable::cell(std::uint64_t value) { return std::to_string(value); }

std::string TextTable::render() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t i = 0; i < header_.size(); ++i) {
    widths[i] = header_[i].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }

  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      out << (i == 0 ? "" : "  ");
      out << row[i];
      out << std::string(widths[i] - row[i].size(), ' ');
    }
    out << '\n';
  };

  emit_row(header_);
  std::size_t total = 0;
  for (std::size_t i = 0; i < widths.size(); ++i) {
    total += widths[i] + (i == 0 ? 0 : 2);
  }
  out << std::string(total, '-') << '\n';
  for (const auto& row : rows_) {
    emit_row(row);
  }
  return out.str();
}

}  // namespace pvm
