// Event counters shared by every layer of the virtualization stack.
//
// Counters are the ground truth the tests assert on: e.g. "one L2 page fault
// under EPT-on-EPT increments kWorldSwitch by 2n+6 and kL0Exit by n+3". Each
// simulated platform owns one CounterSet; components hold references to it.

#ifndef PVM_SRC_METRICS_COUNTERS_H_
#define PVM_SRC_METRICS_COUNTERS_H_

#include <array>
#include <cstdint>
#include <string_view>

namespace pvm {

enum class Counter : std::size_t {
  // World-switch accounting.
  kWorldSwitch,          // any VM-exit or VM-entry style transition
  kL0Exit,               // transitions into the L0 host hypervisor (root mode)
  kL1Exit,               // transitions into the L1 guest hypervisor
  kVmEntry,              // resumptions of a guest
  kDirectSwitch,         // PVM switcher user<->kernel switches w/o hypervisor

  // CPU virtualization.
  kHypercall,
  kSyscall,
  kPrivilegedInstructionTrap,
  kInstructionEmulated,
  kMsrAccess,
  kCpuid,
  kPortIo,
  kHalt,

  // Memory virtualization.
  kGuestPageFault,       // faults against the guest's own page table
  kShadowPageFault,      // faults against a shadow page table (SPT miss)
  kEptViolation,         // faults against an EPT
  kGptWriteProtectTrap,  // L2 writes to its write-protected GPT
  kSptEntryFilled,
  kSptFillRaced,         // fills aborted because a concurrent zap won the race
  kPrefaultFill,         // SPT entries filled proactively on the iret path
  kPrefaultSavedFault,   // faults avoided because prefault already filled
  kVmcsSync,             // VMCS01/12 -> VMCS02 merge operations
  kEptCompressed,        // EPT01+EPT12 -> EPT02 merges

  // TLB.
  kTlbHit,
  kTlbMiss,
  kTlbFlushAll,          // full VPID flush
  kTlbFlushPcid,         // targeted single-PCID flush
  kTlbFlushAvoided,      // flushes avoided by the PCID mapping optimization

  // Interrupts.
  kInterruptInjected,
  kVirtualInterruptDelivered,
  kInterruptPended,  // arrived while the guest masked its virtual IF
  kInterruptWhileGuestRunning,

  // Guest kernel activity.
  kProcessForked,
  kProcessExeced,
  kMmapCall,
  kMunmapCall,
  kCowBreak,
  kIoRequest,

  // Fault injection & recovery (pvm::fault).
  kFaultInjected,        // any injected fault that fired at an instrumented site
  kFrameReclaim,         // reclaim passes run by the shadow engine under pressure
  kFramesReclaimed,      // frames recovered by those passes
  kGuestOomKill,         // guest processes killed by the guest kernel's OOM path
  kBackingFail,          // backing allocations that failed with no recovery path
  kMigrationRetry,       // migration attempts retried after stall/overrun
  kVmresumeRetry,        // VMRESUME launches retried after transient failure

  // Live-migration dirty tracking (pvm::wal-backed protocols).
  kDirtyWpFault,         // write-protect protocol: first store to a clean page
  kDirtyPmlLog,          // PML protocol: one entry appended to a vCPU's log
  kDirtyPmlFlush,        // PML protocol: flush-on-full VM exits
  kMigrationFallback,    // pre-copy degraded to post-copy
  kMigrationRemoteFault, // post-copy: faulted page fetched from the source
  kWatchdogKick,         // watchdog stage 1: re-inject / nudge a stalled vCPU
  kWatchdogReset,        // watchdog stage 2: vCPU reset (TLB + state)
  kWatchdogKill,         // watchdog stage 3: container killed

  kCount,
};

constexpr std::size_t kCounterCount = static_cast<std::size_t>(Counter::kCount);

// Human-readable counter name ("world_switch", "l0_exit", ...).
std::string_view counter_name(Counter counter);

class CounterSet {
 public:
  void add(Counter counter, std::uint64_t delta = 1) {
    values_[static_cast<std::size_t>(counter)] += delta;
  }

  std::uint64_t get(Counter counter) const {
    return values_[static_cast<std::size_t>(counter)];
  }

  void reset() { values_.fill(0); }

  // Difference against an earlier snapshot, counter by counter. Saturates at
  // zero: if this set was reset() after `earlier` was taken (tests do this
  // between measurement windows), a naive subtraction would wrap to huge
  // values — report zero progress instead.
  CounterSet delta_since(const CounterSet& earlier) const {
    CounterSet d;
    for (std::size_t i = 0; i < kCounterCount; ++i) {
      d.values_[i] = values_[i] >= earlier.values_[i] ? values_[i] - earlier.values_[i] : 0;
    }
    return d;
  }

 private:
  std::array<std::uint64_t, kCounterCount> values_{};
};

}  // namespace pvm

#endif  // PVM_SRC_METRICS_COUNTERS_H_
