// Plain-text table rendering for the benchmark harness.
//
// Every bench binary prints the rows/series of one paper table or figure; this
// keeps the formatting consistent and diff-friendly.

#ifndef PVM_SRC_METRICS_TABLE_H_
#define PVM_SRC_METRICS_TABLE_H_

#include <string>
#include <vector>

namespace pvm {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  // Appends a row; it may have fewer cells than the header (padded blank).
  void add_row(std::vector<std::string> row);

  // Convenience cell formatters.
  static std::string cell(double value, int precision = 2);
  static std::string cell(std::uint64_t value);

  // Renders with aligned columns, a header underline, and a trailing newline.
  std::string render() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace pvm

#endif  // PVM_SRC_METRICS_TABLE_H_
