#include "src/metrics/counters.h"

namespace pvm {

std::string_view counter_name(Counter counter) {
  switch (counter) {
    case Counter::kWorldSwitch:
      return "world_switch";
    case Counter::kL0Exit:
      return "l0_exit";
    case Counter::kL1Exit:
      return "l1_exit";
    case Counter::kVmEntry:
      return "vm_entry";
    case Counter::kDirectSwitch:
      return "direct_switch";
    case Counter::kHypercall:
      return "hypercall";
    case Counter::kSyscall:
      return "syscall";
    case Counter::kPrivilegedInstructionTrap:
      return "privileged_instruction_trap";
    case Counter::kInstructionEmulated:
      return "instruction_emulated";
    case Counter::kMsrAccess:
      return "msr_access";
    case Counter::kCpuid:
      return "cpuid";
    case Counter::kPortIo:
      return "port_io";
    case Counter::kHalt:
      return "halt";
    case Counter::kGuestPageFault:
      return "guest_page_fault";
    case Counter::kShadowPageFault:
      return "shadow_page_fault";
    case Counter::kEptViolation:
      return "ept_violation";
    case Counter::kGptWriteProtectTrap:
      return "gpt_write_protect_trap";
    case Counter::kSptEntryFilled:
      return "spt_entry_filled";
    case Counter::kSptFillRaced:
      return "spt_fill_raced";
    case Counter::kPrefaultFill:
      return "prefault_fill";
    case Counter::kPrefaultSavedFault:
      return "prefault_saved_fault";
    case Counter::kVmcsSync:
      return "vmcs_sync";
    case Counter::kEptCompressed:
      return "ept_compressed";
    case Counter::kTlbHit:
      return "tlb_hit";
    case Counter::kTlbMiss:
      return "tlb_miss";
    case Counter::kTlbFlushAll:
      return "tlb_flush_all";
    case Counter::kTlbFlushPcid:
      return "tlb_flush_pcid";
    case Counter::kTlbFlushAvoided:
      return "tlb_flush_avoided";
    case Counter::kInterruptInjected:
      return "interrupt_injected";
    case Counter::kVirtualInterruptDelivered:
      return "virtual_interrupt_delivered";
    case Counter::kInterruptPended:
      return "interrupt_pended";
    case Counter::kInterruptWhileGuestRunning:
      return "interrupt_while_guest_running";
    case Counter::kProcessForked:
      return "process_forked";
    case Counter::kProcessExeced:
      return "process_execed";
    case Counter::kMmapCall:
      return "mmap_call";
    case Counter::kMunmapCall:
      return "munmap_call";
    case Counter::kCowBreak:
      return "cow_break";
    case Counter::kIoRequest:
      return "io_request";
    case Counter::kCount:
      break;
  }
  return "unknown";
}

}  // namespace pvm
