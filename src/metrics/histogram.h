// Latency statistics: running aggregate plus a log-bucketed histogram.
//
// Used to report operation round-trip latencies (Table 1 / Table 2 style) out
// of the simulation. Buckets double in width so percentiles across the ns..ms
// range stay cheap and allocation free.

#ifndef PVM_SRC_METRICS_HISTOGRAM_H_
#define PVM_SRC_METRICS_HISTOGRAM_H_

#include <algorithm>
#include <array>
#include <bit>
#include <cstdint>
#include <limits>

namespace pvm {

class LatencyHistogram {
 public:
  static constexpr std::size_t kBucketCount = 64;

  void record(std::uint64_t value_ns) {
    ++count_;
    sum_ += value_ns;
    min_ = std::min(min_, value_ns);
    max_ = std::max(max_, value_ns);
    ++buckets_[bucket_index(value_ns)];
  }

  std::uint64_t count() const { return count_; }
  std::uint64_t sum() const { return sum_; }
  std::uint64_t min() const { return count_ == 0 ? 0 : min_; }
  std::uint64_t max() const { return max_; }

  double mean() const {
    return count_ == 0 ? 0.0 : static_cast<double>(sum_) / static_cast<double>(count_);
  }

  // Upper bound of the bucket holding the q-quantile (0 < q <= 1). Exact for
  // point distributions (all values equal), approximate otherwise.
  std::uint64_t quantile(double q) const {
    if (count_ == 0) {
      return 0;
    }
    const auto target = static_cast<std::uint64_t>(q * static_cast<double>(count_));
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < kBucketCount; ++i) {
      seen += buckets_[i];
      if (seen > target || seen == count_) {
        return bucket_upper_bound(i);
      }
    }
    return max_;
  }

  void reset() {
    count_ = 0;
    sum_ = 0;
    min_ = std::numeric_limits<std::uint64_t>::max();
    max_ = 0;
    buckets_.fill(0);
  }

  static std::size_t bucket_index(std::uint64_t value) {
    if (value == 0) {
      return 0;
    }
    return static_cast<std::size_t>(std::bit_width(value));
  }

  static std::uint64_t bucket_upper_bound(std::size_t index) {
    if (index >= 64) {
      return std::numeric_limits<std::uint64_t>::max();
    }
    return (1ull << index) - 1;
  }

 private:
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = std::numeric_limits<std::uint64_t>::max();
  std::uint64_t max_ = 0;
  std::array<std::uint64_t, kBucketCount> buckets_{};
};

}  // namespace pvm

#endif  // PVM_SRC_METRICS_HISTOGRAM_H_
