// Full counter report rendering: every non-zero counter as an aligned table,
// plus derived ratios the paper's analysis cares about (switches per fault,
// L0 exits per fault, TLB hit rate).

#ifndef PVM_SRC_METRICS_REPORT_H_
#define PVM_SRC_METRICS_REPORT_H_

#include <string>

#include "src/metrics/counters.h"

namespace pvm {

// Renders all non-zero counters, one per line, aligned.
std::string render_counter_report(const CounterSet& counters);

// Derived per-fault statistics; zero-safe.
struct DerivedStats {
  double switches_per_fault = 0;
  double l0_exits_per_fault = 0;
  double tlb_hit_rate = 0;
  double prefault_coverage = 0;  // prefault fills / SPT fills
};
DerivedStats derive_stats(const CounterSet& counters);

std::string render_derived_stats(const CounterSet& counters);

}  // namespace pvm

#endif  // PVM_SRC_METRICS_REPORT_H_
