#include "src/metrics/report.h"

#include <cstdio>
#include <sstream>

namespace pvm {

std::string render_counter_report(const CounterSet& counters) {
  std::ostringstream out;
  for (std::size_t i = 0; i < kCounterCount; ++i) {
    const auto counter = static_cast<Counter>(i);
    const std::uint64_t value = counters.get(counter);
    if (value == 0) {
      continue;
    }
    char line[96];
    std::snprintf(line, sizeof(line), "%-32s %12llu\n",
                  std::string(counter_name(counter)).c_str(),
                  static_cast<unsigned long long>(value));
    out << line;
  }
  return out.str();
}

DerivedStats derive_stats(const CounterSet& counters) {
  DerivedStats stats;
  const double faults = static_cast<double>(counters.get(Counter::kGuestPageFault) +
                                            counters.get(Counter::kShadowPageFault));
  if (faults > 0) {
    stats.switches_per_fault =
        static_cast<double>(counters.get(Counter::kWorldSwitch)) / faults;
    stats.l0_exits_per_fault = static_cast<double>(counters.get(Counter::kL0Exit)) / faults;
  }
  const double lookups = static_cast<double>(counters.get(Counter::kTlbHit) +
                                             counters.get(Counter::kTlbMiss));
  if (lookups > 0) {
    stats.tlb_hit_rate = static_cast<double>(counters.get(Counter::kTlbHit)) / lookups;
  }
  const double fills = static_cast<double>(counters.get(Counter::kSptEntryFilled));
  if (fills > 0) {
    stats.prefault_coverage =
        static_cast<double>(counters.get(Counter::kPrefaultFill)) / fills;
  }
  return stats;
}

std::string render_derived_stats(const CounterSet& counters) {
  const DerivedStats stats = derive_stats(counters);
  char buffer[256];
  std::snprintf(buffer, sizeof(buffer),
                "switches/fault: %.2f  l0-exits/fault: %.3f  tlb-hit-rate: %.3f  "
                "prefault-coverage: %.3f\n",
                stats.switches_per_fault, stats.l0_exits_per_fault, stats.tlb_hit_rate,
                stats.prefault_coverage);
  return buffer;
}

}  // namespace pvm
