// Privileged/sensitive instruction decoder + emulator model (paper §3.3.1).
//
// PVM "employs an instruction simulator to emulate instruction execution for
// the L2 guest" for everything outside the 22 fast hypercalls, and manages
// the x86 sensitive instructions through pv_cpu_ops/pv_mmu_ops/pv_irq_ops.
// This module models that decoder: a table of the privileged and sensitive
// instructions (Popek/Goldberg's problem set for x86), each with a decode
// class and emulation cost, plus the paravirtual dispatch decision.

#ifndef PVM_SRC_CORE_INSTRUCTION_EMULATOR_H_
#define PVM_SRC_CORE_INSTRUCTION_EMULATOR_H_

#include <cstdint>
#include <optional>
#include <string_view>

#include "src/arch/addresses.h"
#include "src/arch/cost_model.h"
#include "src/arch/cpu_state.h"

namespace pvm {

// The instructions a de-privileged ring-3 guest kernel can trip over.
enum class GuestInstruction {
  // Privileged (fault at CPL 3 -> #GP -> emulate or hypercall).
  kCli,
  kSti,
  kHlt,
  kInvlpg,
  kInvpcid,
  kLgdt,
  kLidt,
  kLtr,
  kMovToCr0,
  kMovToCr3,
  kMovToCr4,
  kMovFromCr3,
  kRdmsr,
  kWrmsr,
  kIn,
  kOut,
  kIret,
  kSysret,
  kSwapgs,
  kWbinvd,
  // Sensitive but unprivileged (do NOT fault — the x86 virtualization hole;
  // must be paravirtualized away, §3.3.1 / Popek-Goldberg).
  kSgdt,
  kSidt,
  kSmsw,
  kStr,
  kPushf,
  kPopf,
};

// How PVM services one instruction.
enum class EmulationRoute {
  kFastHypercall,    // in the 22-entry paravirtual hypercall table
  kTrapAndEmulate,   // #GP -> full decode + simulate
  kParavirtualized,  // rewritten via pv_*_ops; never reaches the hypervisor
};

struct DecodedInstruction {
  GuestInstruction instruction;
  EmulationRoute route;
  bool privileged;       // faults at CPL 3
  std::uint64_t emulate_ns;  // handler cost once dispatched
};

class InstructionEmulator {
 public:
  explicit InstructionEmulator(const CostModel& costs) : costs_(&costs) {}

  // Decodes the instruction and decides its service route. Sensitive
  // unprivileged instructions return kParavirtualized: running them
  // unmodified would silently misbehave, so the PV kernel must have
  // replaced them at build time.
  DecodedInstruction decode(GuestInstruction instruction) const;

  // The state mutation the emulation performs (register effects only; MMU
  // effects are the memory engine's job). Returns the cost in ns.
  std::uint64_t emulate(const DecodedInstruction& decoded, VcpuState& vcpu,
                        std::uint64_t operand) const;

  static std::string_view name(GuestInstruction instruction);

 private:
  const CostModel* costs_;
};

}  // namespace pvm

#endif  // PVM_SRC_CORE_INSTRUCTION_EMULATOR_H_
