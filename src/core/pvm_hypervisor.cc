#include "src/core/pvm_hypervisor.h"

#include <stdexcept>

namespace pvm {

bool PvmHypervisor::is_fast_hypercall(PrivOp op) {
  // The paper lists 22 frequently-invoked privileged instructions served by
  // hypercalls (iret, MSR reads/writes, ...); everything else goes through
  // #GP trap-and-emulate.
  switch (op) {
    case PrivOp::kHypercallNop:
    case PrivOp::kIret:
    case PrivOp::kHalt:
    case PrivOp::kWriteCr3:
    case PrivOp::kInvlpg:
    case PrivOp::kCpuid:
    case PrivOp::kIoKick:
      return true;
    case PrivOp::kMsrRead:
    case PrivOp::kMsrWrite:
      // MSR access is in the hypercall table, but the benchmark MSR
      // (MSR_CORE_PERF_GLOBAL_CTRL) is a PMU register PVM routes through the
      // full emulation path; Table 1 reflects that extra cost.
      return false;
    case PrivOp::kException:
    case PrivOp::kPortIo:
      return false;
  }
  return false;
}

std::uint64_t PvmHypervisor::dispatch_cost(PrivOp op) const {
  switch (op) {
    case PrivOp::kHypercallNop:
    case PrivOp::kIret:
    case PrivOp::kWriteCr3:
    case PrivOp::kInvlpg:
    case PrivOp::kCpuid:
      return costs_->pvm_simple_handler;
    case PrivOp::kHalt:
      // Sleep/wakeup handled inside L1: a fraction of the KVM wake path.
      return costs_->pvm_simple_handler + costs_->halt_wakeup / 6;
    case PrivOp::kMsrRead:
    case PrivOp::kMsrWrite:
      // Decode + simulate + the real (slow) PMU register access.
      return costs_->pvm_msr_handler + costs_->pvm_instruction_emulate +
             costs_->msr_hardware_access;
    case PrivOp::kPortIo:
      return costs_->pvm_pio_handler + costs_->pvm_instruction_emulate;
    case PrivOp::kException:
      return costs_->pvm_exception_inject;
    case PrivOp::kIoKick:
      return costs_->io_kick_handler;
  }
  return costs_->pvm_simple_handler;
}

Task<void> PvmHypervisor::handle_privileged_op(SwitcherState& state, VcpuState& vcpu,
                                               PrivOp op) {
  const VirtRing resume_ring = vcpu.virt_ring;
  counters_->add(Counter::kPrivilegedInstructionTrap);
  if (op == PrivOp::kHypercallNop || is_fast_hypercall(op)) {
    counters_->add(Counter::kHypercall);
  }

  co_await switcher_.to_hypervisor(
      state, vcpu, is_fast_hypercall(op) ? SwitchReason::kHypercall : SwitchReason::kException);

  co_await sim_->delay(costs_->pvm_exit_dispatch);
  if (!is_fast_hypercall(op)) {
    counters_->add(Counter::kInstructionEmulated);
  }
  switch (op) {
    case PrivOp::kMsrRead:
    case PrivOp::kMsrWrite:
      counters_->add(Counter::kMsrAccess);
      break;
    case PrivOp::kCpuid:
      counters_->add(Counter::kCpuid);
      break;
    case PrivOp::kPortIo:
      counters_->add(Counter::kPortIo);
      break;
    case PrivOp::kHalt:
      counters_->add(Counter::kHalt);
      break;
    default:
      break;
  }
  co_await sim_->delay(dispatch_cost(op));

  co_await switcher_.enter_guest(state, vcpu, resume_ring);
}

Task<void> PvmHypervisor::handle_gp_instruction(SwitcherState& state, VcpuState& vcpu,
                                                GuestInstruction instruction,
                                                std::uint64_t operand) {
  const DecodedInstruction decoded = emulator_.decode(instruction);
  if (decoded.route == EmulationRoute::kParavirtualized) {
    // These execute silently at CPL 3; if one "trapped" the guest kernel was
    // not properly paravirtualized — a correctness bug, not a slow path.
    throw std::logic_error(std::string("unparavirtualized sensitive instruction: ") +
                           std::string(InstructionEmulator::name(instruction)));
  }
  const VirtRing resume_ring = vcpu.virt_ring;
  counters_->add(Counter::kPrivilegedInstructionTrap);
  if (decoded.route == EmulationRoute::kFastHypercall) {
    counters_->add(Counter::kHypercall);
    co_await switcher_.to_hypervisor(state, vcpu, SwitchReason::kHypercall);
  } else {
    counters_->add(Counter::kInstructionEmulated);
    co_await switcher_.to_hypervisor(state, vcpu, SwitchReason::kException);
  }
  co_await sim_->delay(costs_->pvm_exit_dispatch);
  // The emulation mutates the *saved guest context* (the switcher swapped
  // the live vCPU to the host's); enter_guest restores it with the effect
  // applied. cli/sti land in the shared virtual-IF word.
  co_await sim_->delay(emulator_.emulate(decoded, state.saved_guest, operand));
  if (instruction == GuestInstruction::kCli || instruction == GuestInstruction::kSti ||
      instruction == GuestInstruction::kPopf) {
    state.guest_virtual_if = state.saved_guest.rflags_if;
  }
  co_await switcher_.enter_guest(state, vcpu, resume_ring);
}

Task<void> PvmHypervisor::handle_exception_roundtrip(SwitcherState& state, VcpuState& vcpu) {
  // Guest (user) triggers an exception; the customized IDT routes it to PVM.
  co_await switcher_.to_hypervisor(state, vcpu, SwitchReason::kException);
  co_await sim_->delay(costs_->pvm_exit_dispatch + costs_->pvm_exception_inject);

  // PVM injects the exception into the guest kernel.
  co_await switcher_.enter_guest(state, vcpu, VirtRing::kVRing0);
  // Guest kernel exception handler body.
  co_await sim_->delay(costs_->guest_syscall_body_getpid);

  // Guest kernel returns via the iret hypercall.
  counters_->add(Counter::kHypercall);
  co_await switcher_.to_hypervisor(state, vcpu, SwitchReason::kHypercall);
  co_await sim_->delay(costs_->pvm_exit_dispatch + costs_->pvm_simple_handler);
  co_await switcher_.enter_guest(state, vcpu, VirtRing::kVRing3);
}

Task<void> PvmHypervisor::deliver_interrupt_to_guest(SwitcherState& state, VcpuState& vcpu,
                                                     std::uint8_t vector) {
  // The hardware interrupt arrived while the guest ran at h_ring3 with
  // RFLAGS.IF set; the customized IDT in the guest address space transfers
  // to PVM (equivalent to a VM exit).
  counters_->add(Counter::kInterruptWhileGuestRunning);
  co_await switcher_.to_hypervisor(state, vcpu, SwitchReason::kInterrupt);

  // Convert to a virtual interrupt via the reused KVM APIC virtualization.
  state.apic.raise(vector);
  co_await sim_->delay(costs_->apic_virtualization);

  // The shared 8-byte RFLAGS.IF word tells PVM whether the guest can take
  // the interrupt now; while masked it stays pending in the APIC's IRR
  // until the guest re-enables interrupts (guest_set_interrupt_flag).
  if (state.guest_virtual_if) {
    const auto accepted = state.apic.accept();
    if (accepted) {
      counters_->add(Counter::kVirtualInterruptDelivered);
      co_await switcher_.enter_guest(state, vcpu, VirtRing::kVRing0);
      co_await sim_->delay(costs_->guest_syscall_body_getpid);  // guest IRQ handler body
      state.apic.eoi();
      counters_->add(Counter::kHypercall);
      co_await switcher_.to_hypervisor(state, vcpu, SwitchReason::kHypercall);  // iret
      co_await sim_->delay(costs_->pvm_exit_dispatch + costs_->pvm_simple_handler);
    }
  } else {
    counters_->add(Counter::kInterruptPended);
    state.pending_interrupt = true;
  }
  co_await switcher_.enter_guest(state, vcpu, VirtRing::kVRing3);
}

Task<void> PvmHypervisor::guest_set_interrupt_flag(SwitcherState& state, VcpuState& vcpu,
                                                   bool enabled) {
  // Just a store to the shared word: no trap, no world switch (§3.3.3).
  state.guest_virtual_if = enabled;
  vcpu.rflags_if = enabled;
  co_await sim_->delay(2);
  if (enabled && state.pending_interrupt) {
    state.pending_interrupt = false;
    // Drain every pended virtual interrupt in APIC priority order: the
    // remaining delivery is the in-L1 half of deliver_interrupt_to_guest
    // (no new L0 injection).
    while (true) {
      const auto vector = state.apic.accept();
      if (!vector) {
        break;
      }
      counters_->add(Counter::kVirtualInterruptDelivered);
      co_await switcher_.to_hypervisor(state, vcpu, SwitchReason::kInterrupt);
      co_await sim_->delay(costs_->apic_virtualization);
      co_await switcher_.enter_guest(state, vcpu, VirtRing::kVRing0);
      co_await sim_->delay(costs_->guest_syscall_body_getpid);
      state.apic.eoi();
      counters_->add(Counter::kHypercall);
      co_await switcher_.to_hypervisor(state, vcpu, SwitchReason::kHypercall);
      co_await sim_->delay(costs_->pvm_exit_dispatch + costs_->pvm_simple_handler);
      co_await switcher_.enter_guest(state, vcpu, VirtRing::kVRing3);
    }
  }
}

std::unique_ptr<PvmMemoryEngine> PvmHypervisor::create_memory_engine(
    FrameAllocator& l1_frames, const std::string& name) const {
  PvmMemoryEngine::Options options;
  options.prefault = options_.prefault;
  options.pcid_mapping = options_.pcid_mapping;
  options.fine_grained_locks = options_.fine_grained_locks;
  options.dual_spt = options_.dual_spt;
  return std::make_unique<PvmMemoryEngine>(*sim_, *costs_, *counters_, *trace_, l1_frames, name,
                                           options);
}

}  // namespace pvm
