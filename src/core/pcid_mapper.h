// PCID mapping (paper §3.3.2, optimization 2).
//
// A traditional shadow-paging hypervisor flushes the whole guest VPID on any
// guest TLB-flush request, because all guest processes share one VPID tag.
// PVM instead assigns unused L1 PCID values to L2 address spaces — 32..47 for
// guest v_ring0 (kernel) and 48..63 for v_ring3 (user) — so the TLB can keep
// per-process shadow translations alive across world switches, and guest
// flush requests become targeted single-PCID flushes.
//
// 16 slots per ring are multiplexed over guest processes LRU-style; stealing
// a slot requires flushing its stale entries (counted, so benchmarks see the
// pressure effect with many processes).

#ifndef PVM_SRC_CORE_PCID_MAPPER_H_
#define PVM_SRC_CORE_PCID_MAPPER_H_

#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

namespace pvm {

class PcidMapper {
 public:
  static constexpr std::uint16_t kKernelBase = 32;  // 32..47 for v_ring0
  static constexpr std::uint16_t kUserBase = 48;    // 48..63 for v_ring3
  static constexpr std::uint16_t kSlotsPerRing = 16;

  struct Mapping {
    std::uint16_t hw_pcid = 0;
    bool stolen = false;  // slot was recycled: its old TLB entries must go
  };

  // Returns the hardware PCID for (guest process, ring). LRU-recycles when
  // all 16 slots of the ring are in use.
  Mapping map(std::uint64_t guest_pid, bool kernel_ring) {
    Ring& ring = kernel_ring ? kernel_ : user_;
    const std::uint16_t base = kernel_ring ? kKernelBase : kUserBase;

    auto it = ring.by_pid.find(guest_pid);
    if (it != ring.by_pid.end()) {
      // Refresh LRU position.
      ring.lru.splice(ring.lru.end(), ring.lru, it->second.lru_pos);
      return Mapping{it->second.hw_pcid, false};
    }

    std::uint16_t slot = 0;
    bool have_slot = false;
    if (!ring.free_slots.empty()) {
      slot = ring.free_slots.back();
      ring.free_slots.pop_back();
      have_slot = true;
    } else if (ring.next_fresh < kSlotsPerRing) {
      slot = static_cast<std::uint16_t>(base + ring.next_fresh++);
      have_slot = true;
    }
    if (have_slot) {
      ring.lru.push_back(guest_pid);
      ring.by_pid[guest_pid] = Entry{slot, std::prev(ring.lru.end())};
      return Mapping{slot, false};
    }

    // Steal the least-recently-used slot.
    const std::uint64_t victim = ring.lru.front();
    ring.lru.pop_front();
    const std::uint16_t stolen = ring.by_pid.at(victim).hw_pcid;
    ring.by_pid.erase(victim);
    ring.lru.push_back(guest_pid);
    ring.by_pid[guest_pid] = Entry{stolen, std::prev(ring.lru.end())};
    ++steals_;
    return Mapping{stolen, true};
  }

  // Drops a process's mappings (process exit). Returns the freed hardware
  // PCIDs so the caller can flush them.
  void release(std::uint64_t guest_pid) {
    for (Ring* ring : {&kernel_, &user_}) {
      auto it = ring->by_pid.find(guest_pid);
      if (it != ring->by_pid.end()) {
        ring->free_slots.push_back(it->second.hw_pcid);
        ring->lru.erase(it->second.lru_pos);
        ring->by_pid.erase(it);
      }
    }
  }

  std::uint64_t steals() const { return steals_; }
  std::size_t live_mappings() const { return kernel_.by_pid.size() + user_.by_pid.size(); }

 private:
  struct Entry {
    std::uint16_t hw_pcid;
    std::list<std::uint64_t>::iterator lru_pos;
  };
  struct Ring {
    std::unordered_map<std::uint64_t, Entry> by_pid;
    std::list<std::uint64_t> lru;
    std::vector<std::uint16_t> free_slots;
    std::uint16_t next_fresh = 0;
  };

  Ring kernel_;
  Ring user_;
  std::uint64_t steals_ = 0;
};

}  // namespace pvm

#endif  // PVM_SRC_CORE_PCID_MAPPER_H_
