// The PVM guest hypervisor (paper §3.3).
//
// CPU virtualization is pure software: the de-privileged L2 guest traps into
// PVM through the switcher, either via one of the 22 fast hypercalls or via a
// #GP-and-emulate path for unparavirtualized privileged instructions.
// Interrupt virtualization needs L0 exactly once per interrupt (the hardware
// exit); delivery into L2 then happens through PVM's customized IDT and the
// shared virtual RFLAGS.IF word, with no further L0 involvement.

#ifndef PVM_SRC_CORE_PVM_HYPERVISOR_H_
#define PVM_SRC_CORE_PVM_HYPERVISOR_H_

#include <cstdint>
#include <memory>
#include <string>

#include "src/arch/cost_model.h"
#include "src/arch/cpu_state.h"
#include "src/arch/physical_memory.h"
#include "src/arch/priv_op.h"
#include "src/core/instruction_emulator.h"
#include "src/core/memory_engine.h"
#include "src/core/switcher.h"
#include "src/metrics/counters.h"
#include "src/sim/simulation.h"
#include "src/sim/task.h"
#include "src/trace/trace.h"

namespace pvm {

class PvmHypervisor {
 public:
  struct Options {
    bool direct_switch = true;
    bool prefault = true;
    bool pcid_mapping = true;
    bool fine_grained_locks = true;
    bool dual_spt = true;
    // §5 future work, implemented as an extension: the switcher classifies
    // page faults and injects guest-table faults straight into the L2
    // kernel, saving the exit into the PVM hypervisor.
    bool switcher_pf_classify = false;
    // §5 future work, implemented as an extension: remove write protection
    // and let guest + hypervisor construct the page tables collaboratively —
    // GPT stores are queued in a shared ring and synchronized in batches at
    // the next natural world switch instead of trapping one by one.
    bool collaborative_pt = false;
  };

  PvmHypervisor(Simulation& sim, const CostModel& costs, CounterSet& counters, TraceLog& trace,
                const Options& options)
      : sim_(&sim),
        costs_(&costs),
        counters_(&counters),
        trace_(&trace),
        options_(options),
        switcher_(sim, costs, counters, trace),
        emulator_(costs) {}

  const Options& options() const { return options_; }
  Switcher& switcher() { return switcher_; }
  Simulation& sim() { return *sim_; }
  const CostModel& costs() const { return *costs_; }
  CounterSet& counters() { return *counters_; }
  TraceLog& trace() { return *trace_; }

  // True if `op` is served by a fast hypercall (the paravirtualized path);
  // false means trap-and-emulate through the instruction simulator.
  static bool is_fast_hypercall(PrivOp op);

  // Full round trip for a privileged operation issued by the L2 guest
  // kernel: switcher exit -> dispatch/emulate -> switcher entry. This is the
  // pvm row of Table 1. The guest's virtual ring is restored on return.
  Task<void> handle_privileged_op(SwitcherState& state, VcpuState& vcpu, PrivOp op);

  // A #GP taken by the de-privileged guest kernel on `instruction`: the
  // switcher routes it to PVM, which decodes, emulates the architectural
  // effect on the vCPU state, and resumes the guest. Fast-hypercall
  // instructions pay the cheap path; paravirtualized-only instructions
  // (SGDT & friends) never fault and are rejected as a guest-kernel bug.
  Task<void> handle_gp_instruction(SwitcherState& state, VcpuState& vcpu,
                                   GuestInstruction instruction, std::uint64_t operand);

  const InstructionEmulator& instruction_emulator() const { return emulator_; }

  // Exception round trip (Table 1 "Exception"): the faulting guest traps to
  // PVM, which injects the exception back into the guest kernel; the guest
  // handler runs and returns via the iret hypercall.
  Task<void> handle_exception_roundtrip(SwitcherState& state, VcpuState& vcpu);

  // The guest writes the shared RFLAGS.IF word. Free of world switches —
  // that is the whole point of the shared structure (§3.3.3). Re-enabling
  // with an interrupt pending delivers it immediately.
  Task<void> guest_set_interrupt_flag(SwitcherState& state, VcpuState& vcpu, bool enabled);

  // Interrupt delivery inside L1 (after L0 injected it into the L1 VM):
  // the customized IDT pulls execution into PVM, which converts the
  // interrupt into a virtual one and delivers it to the guest kernel if the
  // shared RFLAGS.IF word allows; the guest acks and irets.
  Task<void> deliver_interrupt_to_guest(SwitcherState& state, VcpuState& vcpu,
                                        std::uint8_t vector = kTimerVector);

  static constexpr std::uint8_t kTimerVector = 0xEC;  // Linux LOCAL_TIMER_VECTOR

  // Builds a memory engine for one L2 VM, backed by `l1_frames`.
  std::unique_ptr<PvmMemoryEngine> create_memory_engine(FrameAllocator& l1_frames,
                                                        const std::string& name) const;

 private:
  std::uint64_t dispatch_cost(PrivOp op) const;

  Simulation* sim_;
  const CostModel* costs_;
  CounterSet* counters_;
  TraceLog* trace_;
  Options options_;
  Switcher switcher_;
  InstructionEmulator emulator_;
};

}  // namespace pvm

#endif  // PVM_SRC_CORE_PVM_HYPERVISOR_H_
