#include "src/core/switcher.h"

#include <string_view>

#include "src/obs/flight.h"
#include "src/obs/span.h"

namespace pvm {

namespace {

std::string_view reason_text(SwitchReason reason) {
  switch (reason) {
    case SwitchReason::kSyscall:
      return "syscall";
    case SwitchReason::kHypercall:
      return "hypercall";
    case SwitchReason::kException:
      return "exception";
    case SwitchReason::kInterrupt:
      return "interrupt";
    case SwitchReason::kPageFault:
      return "#PF";
    case SwitchReason::kGptWriteProtect:
      return "GPT write-protect";
  }
  return "?";
}

}  // namespace

Task<void> Switcher::to_hypervisor(SwitcherState& state, VcpuState& vcpu, SwitchReason reason) {
  obs::SpanScope span(sim_->spans(), obs::Phase::kSwitcherExit);
  if (flight::FlightRecorder* flight = sim_->flight()) {
    flight->record(flight::EventKind::kSwitcherExit, 0, 0,
                   static_cast<std::uint8_t>(reason));
  }
  counters_->add(Counter::kWorldSwitch);
  counters_->add(Counter::kL1Exit);
  trace_->emit(sim_->now(), TraceActor::kSwitcher, TraceEventKind::kVmExit, reason_text(reason));

  // The CPU enters h_ring0 through MSR_LSTAR / the customized IDT; the
  // to_hypervisor path saves guest state into the per-CPU switcher state,
  // clears general-purpose registers (except RSP/RAX), and restores the L1
  // host context.
  state.saved_guest = vcpu;
  vcpu = state.saved_host;
  vcpu.hw_ring = HwRing::kRing0;
  state.guest_running = false;

  co_await sim_->delay(costs_->ring_crossing + costs_->switcher_save_restore);
}

Task<void> Switcher::enter_guest(SwitcherState& state, VcpuState& vcpu, VirtRing target_ring) {
  obs::SpanScope span(sim_->spans(), obs::Phase::kSwitcherEntry);
  if (flight::FlightRecorder* flight = sim_->flight()) {
    flight->record(flight::EventKind::kSwitcherEntry, 0, 0,
                   target_ring == VirtRing::kVRing0 ? 0 : 3);
  }
  counters_->add(Counter::kWorldSwitch);
  counters_->add(Counter::kVmEntry);
  trace_->emit(sim_->now(), TraceActor::kSwitcher, TraceEventKind::kVmEntry,
               target_ring == VirtRing::kVRing0 ? "v_ring0" : "v_ring3");

  // enter_guest saves the host context and restores the guest's, arming
  // RFLAGS.IF in the iret frame so external interrupts stay deliverable
  // while the de-privileged guest runs at h_ring3 (§3.3.3).
  state.saved_host = vcpu;
  vcpu = state.saved_guest;
  vcpu.hw_ring = HwRing::kRing3;
  vcpu.virt_ring = target_ring;
  vcpu.rflags_if = true;
  state.guest_running = true;

  co_await sim_->delay(costs_->ring_crossing + costs_->switcher_save_restore);
}

Task<void> Switcher::direct_switch_to_kernel(SwitcherState& state, VcpuState& vcpu) {
  obs::SpanScope span(sim_->spans(), obs::Phase::kDirectSwitch);
  if (flight::FlightRecorder* flight = sim_->flight()) {
    flight->record(flight::EventKind::kDirectSwitch, 0,
                   costs_->ring_crossing + costs_->direct_switch_work, 0);
  }
  counters_->add(Counter::kWorldSwitch);
  counters_->add(Counter::kDirectSwitch);
  trace_->emit(sim_->now(), TraceActor::kSwitcher, TraceEventKind::kDirectSwitch,
               "guest kernel");

  // Emulate the syscall instruction: swap hardware CR3 to the kernel shadow
  // table, flip cpl/stack/gs, construct the syscall frame — all without
  // entering the hypervisor.
  vcpu.virt_ring = VirtRing::kVRing0;
  co_await sim_->delay(costs_->ring_crossing + costs_->direct_switch_work);
  (void)state;
}

Task<void> Switcher::direct_switch_to_user(SwitcherState& state, VcpuState& vcpu) {
  obs::SpanScope span(sim_->spans(), obs::Phase::kDirectSwitch);
  if (flight::FlightRecorder* flight = sim_->flight()) {
    flight->record(flight::EventKind::kDirectSwitch, 0,
                   costs_->ring_crossing + costs_->direct_switch_work, 1);
  }
  counters_->add(Counter::kWorldSwitch);
  counters_->add(Counter::kDirectSwitch);
  trace_->emit(sim_->now(), TraceActor::kSwitcher, TraceEventKind::kDirectSwitch,
               "guest user (sysret)");

  vcpu.virt_ring = VirtRing::kVRing3;
  co_await sim_->delay(costs_->ring_crossing + costs_->direct_switch_work);
  (void)state;
}

}  // namespace pvm
