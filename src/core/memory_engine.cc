#include "src/core/memory_engine.h"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <utility>

#include "src/fault/fault.h"
#include "src/obs/flight.h"
#include "src/obs/span.h"
#include "src/obs/ts.h"

namespace pvm {

PvmMemoryEngine::PvmMemoryEngine(Simulation& sim, const CostModel& costs, CounterSet& counters,
                                 TraceLog& trace, FrameAllocator& l1_frames, std::string name,
                                 const Options& options)
    : sim_(&sim),
      costs_(&costs),
      counters_(&counters),
      trace_(&trace),
      l1_frames_(&l1_frames),
      name_(std::move(name)),
      options_(options),
      locks_(sim, name_, options.fine_grained_locks),
      gpa_map_(name_ + ".gpa_map", nullptr) {}

void PvmMemoryEngine::create_process(std::uint64_t pid, const PageTable* guest_pt) {
  ProcessShadow shadow;
  shadow.kernel_spt =
      std::make_unique<PageTable>(name_ + ".spt_k." + std::to_string(pid), l1_frames_);
  if (options_.dual_spt) {
    shadow.user_spt =
        std::make_unique<PageTable>(name_ + ".spt_u." + std::to_string(pid), l1_frames_);
  }
  shadow.guest_pt = guest_pt;
  shadows_[pid] = std::move(shadow);
}

void PvmMemoryEngine::note_leaves(std::int64_t delta) {
  if (delta == 0) {
    return;
  }
  if (ts::Collector* ts = sim_->ts()) {
    ts->gauge_add("live_shadow_leaves", delta);
  }
}

void PvmMemoryEngine::erase_process_rmap_state(std::uint64_t pid) {
  std::int64_t erased = 0;
  for (auto it = leaf_gfn_.begin(); it != leaf_gfn_.end();) {
    if (std::get<0>(it->first) == pid) {
      it = leaf_gfn_.erase(it);
      ++erased;
    } else {
      ++it;
    }
  }
  note_leaves(-erased);
  for (auto& [gfn, entries] : rmap_) {
    entries.erase_if([pid](const RmapEntry& e) { return e.pid == pid; }, rmap_slab_);
  }
}

void PvmMemoryEngine::destroy_process(std::uint64_t pid, Tlb& tlb, std::uint16_t vpid) {
  auto it = shadows_.find(pid);
  if (it == shadows_.end()) {
    return;
  }
  MutationScope mutation(this);
  erase_process_rmap_state(pid);
  // Flush any TLB entries tagged with the process's mapped PCIDs. Without
  // PCID mapping all processes share the VPID tag, so flush it whole.
  if (options_.pcid_mapping) {
    const PcidMapper::Mapping kernel = pcid_mapper_.map(pid, true);
    tlb.flush_pcid(vpid, kernel.hw_pcid);
    if (options_.dual_spt) {
      const PcidMapper::Mapping user = pcid_mapper_.map(pid, false);
      tlb.flush_pcid(vpid, user.hw_pcid);
    }
    pcid_mapper_.release(pid);
  } else {
    tlb.flush_vpid(vpid);
  }
  shadows_.erase(it);
  maybe_check_after_mutation();
}

PvmMemoryEngine::ProcessShadow& PvmMemoryEngine::shadow_for(std::uint64_t pid) {
  auto it = shadows_.find(pid);
  if (it == shadows_.end()) {
    throw std::logic_error(name_ + ": no shadow tables for pid " + std::to_string(pid));
  }
  return it->second;
}

PageTable& PvmMemoryEngine::spt(std::uint64_t pid, bool kernel_ring) {
  ProcessShadow& shadow = shadow_for(pid);
  if (!kernel_ring && options_.dual_spt) {
    return *shadow.user_spt;
  }
  return *shadow.kernel_spt;
}

const PageTable& PvmMemoryEngine::spt(std::uint64_t pid, bool kernel_ring) const {
  auto it = shadows_.find(pid);
  if (it == shadows_.end()) {
    throw std::logic_error(name_ + ": no shadow tables for pid " + std::to_string(pid));
  }
  if (!kernel_ring && options_.dual_spt) {
    return *it->second.user_spt;
  }
  return *it->second.kernel_spt;
}

std::uint64_t PvmMemoryEngine::spt_leaves(std::uint64_t pid, bool kernel_ring) const {
  return spt(pid, kernel_ring).present_leaf_count();
}

std::uint64_t PvmMemoryEngine::shadow_table_frames() const {
  std::uint64_t total = gpa_map_.node_count();
  for (const auto& [pid, shadow] : shadows_) {
    total += shadow.kernel_spt->node_count();
    if (shadow.user_spt) {
      total += shadow.user_spt->node_count();
    }
  }
  return total;
}

SlabStats PvmMemoryEngine::alloc_stats() const {
  SlabStats stats = rmap_slab_.stats();
  stats += gpa_map_.node_alloc_stats();
  for (const auto& [pid, shadow] : shadows_) {
    stats += shadow.kernel_spt->node_alloc_stats();
    if (shadow.user_spt) {
      stats += shadow.user_spt->node_alloc_stats();
    }
  }
  return stats;
}

std::uint64_t PvmMemoryEngine::translate_or_allocate_gpa(std::uint64_t gpa_frame,
                                                         bool* allocated) {
  const std::uint64_t gpa = gpa_frame << kPageShift;
  if (const Pte* existing = gpa_map_.find_pte(gpa); existing != nullptr && existing->present()) {
    if (allocated != nullptr) {
      *allocated = false;
    }
    return existing->frame_number();
  }
  const std::uint64_t l1_frame = l1_frames_->allocate_or_throw();
  gpa_map_.map(gpa, l1_frame, PteFlags::rw_kernel());
  if (allocated != nullptr) {
    *allocated = true;
  }
  return l1_frame;
}

std::optional<std::uint64_t> PvmMemoryEngine::translate_or_allocate_gpa_checked(
    std::uint64_t gpa_frame, bool* allocated, ReclaimStats* stats) {
  const std::uint64_t gpa = gpa_frame << kPageShift;
  if (const Pte* existing = gpa_map_.find_pte(gpa); existing != nullptr && existing->present()) {
    if (allocated != nullptr) {
      *allocated = false;
    }
    return existing->frame_number();
  }
  std::optional<std::uint64_t> l1_frame = l1_frames_->allocate();
  if (!l1_frame.has_value()) {
    counters_->add(Counter::kFrameReclaim);
    l1_frame = reclaim_backing_frame(gpa_frame, stats);
    if (!l1_frame.has_value()) {
      return std::nullopt;
    }
  }
  gpa_map_.map(gpa, *l1_frame, PteFlags::rw_kernel());
  if (allocated != nullptr) {
    *allocated = true;
  }
  return l1_frame;
}

std::optional<std::uint64_t> PvmMemoryEngine::reclaim_backing_frame(std::uint64_t requesting_gfn,
                                                                    ReclaimStats* stats) {
  // Victim selection in deterministic (gpa_map traversal) order. Cold gfns
  // — no rmap entries, hence no shadow leaf caches them — go first: evicting
  // one drops only the gpa_map translation. Warm gfns cost a leaf zap per
  // rmap entry plus the TLB flush below.
  constexpr std::size_t kReclaimBatch = 32;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> cold;  // (gfn, frame)
  std::vector<std::pair<std::uint64_t, std::uint64_t>> warm;
  gpa_map_.for_each_leaf([&](std::uint64_t gpa, const Pte& pte) {
    const std::uint64_t gfn = gpa >> kPageShift;
    if (gfn == requesting_gfn) {
      return;  // never evict the translation being established
    }
    if (options_.fine_grained_locks && !locks_.rmap_lock_idle(gfn)) {
      // A fill or zap in flight for this gfn holds a translation it took
      // before suspending; evicting the gfn under it would let the resumed
      // task install a leaf over a recycled frame.
      return;
    }
    const auto rit = rmap_.find(gfn);
    auto& bucket = (rit == rmap_.end() || rit->second.empty()) ? cold : warm;
    if (bucket.size() < kReclaimBatch) {
      bucket.emplace_back(gfn, pte.frame_number());
    }
  });

  std::vector<std::uint64_t> recovered;
  std::uint64_t leaves_zapped = 0;
  std::int64_t leaves_erased = 0;
  const auto evict = [&](std::uint64_t gfn, std::uint64_t frame) {
    if (const auto rit = rmap_.find(gfn); rit != rmap_.end()) {
      for (const RmapEntry& entry : rit->second) {
        spt(entry.pid, entry.kernel_ring).unmap(entry.gva);
        leaves_erased += static_cast<std::int64_t>(
            leaf_gfn_.erase(LeafKey{entry.pid, entry.kernel_ring, entry.gva}));
        ++leaves_zapped;
      }
      rit->second.clear(rmap_slab_);
      rmap_.erase(rit);
    }
    gpa_map_.unmap(gfn << kPageShift);
    recovered.push_back(frame);
  };
  for (const auto& [gfn, frame] : cold) {
    if (recovered.size() >= kReclaimBatch) {
      break;
    }
    evict(gfn, frame);
  }
  for (const auto& [gfn, frame] : warm) {
    if (recovered.size() >= kReclaimBatch) {
      break;
    }
    evict(gfn, frame);
  }
  note_leaves(-leaves_erased);
  if (recovered.empty()) {
    return std::nullopt;
  }
  counters_->add(Counter::kFramesReclaimed, recovered.size());
  if (stats != nullptr) {
    stats->frames += recovered.size();
    stats->leaves_zapped += leaves_zapped;
  }
  // The first frame goes straight to the requester — routing it through the
  // allocator could see the same injected pressure that forced the reclaim.
  // The rest refill the free list.
  for (std::size_t i = 1; i < recovered.size(); ++i) {
    l1_frames_->free(recovered[i]);
  }
  if (leaves_zapped > 0 && reclaim_flush_) {
    reclaim_flush_();
  }
  return recovered.front();
}

Task<bool> PvmMemoryEngine::fill_spt(std::uint64_t pid, std::uint64_t gva, bool kernel_ring,
                                     Pte gpt_leaf, bool is_prefault) {
  obs::SpanScope span(sim_->spans(),
                      is_prefault ? obs::Phase::kPrefault : obs::Phase::kSptFill, gva);
  MutationScope mutation(this);
  if (fault::FaultInjector* faults = sim_->faults(); faults != nullptr) {
    if (faults->spurious_spt_inval(name_)) {
      // Injected spurious invalidation: behaves exactly like losing a race
      // with a concurrent zap — nothing installed, the access refaults.
      counters_->add(Counter::kFaultInjected);
      counters_->add(Counter::kSptFillRaced);
      if (flight::FlightRecorder* flight = sim_->flight()) {
        flight->record(flight::EventKind::kFaultInjected,
                       flight->intern(fault_kind_name(fault::FaultKind::kSpuriousSptInval)),
                       gva, static_cast<std::uint8_t>(fault::FaultKind::kSpuriousSptInval));
        flight->record(flight::EventKind::kSptFill, gva, pid, 2);
      }
      co_return true;
    }
  }
  PageTable& table = spt(pid, kernel_ring);
  const std::uint64_t gfn = gpt_leaf.frame_number();
  const LeafKey key{pid, kernel_ring, gva};

  // Phase 1 (lock-free, one of PVM's optimizations): walk the shadow table
  // to find out whether this fill is structural (needs new shadow pages) or
  // a plain leaf install.
  const WalkResult probe = table.walk(gva, AccessType::kRead, false);
  const bool structural = probe.missing_level > 1;
  co_await sim_->delay(static_cast<std::uint64_t>(probe.levels_walked) * costs_->walk_load);

  // Phase 2: translate GPA_L2 -> GPA_L1 and record the reverse mapping under
  // the gfn's rmap lock. The lock stays held through the install (lock order
  // rmap -> meta/pt), so a zap of the same gfn cannot interleave between the
  // rmap update and the leaf store.
  Resource& rmap_lock = locks_.rmap_lock(gfn);
  ScopedResource rmap_guard = co_await rmap_lock.scoped();
  bool allocated = false;
  ReclaimStats reclaim;
  const std::optional<std::uint64_t> backing =
      translate_or_allocate_gpa_checked(gfn, &allocated, &reclaim);
  if (!backing.has_value()) {
    // True exhaustion: the allocator is empty and reclaim found no victim.
    // The caller escalates (guest OOM kill); installing nothing keeps the
    // shadow state coherent.
    counters_->add(Counter::kBackingFail);
    co_return false;
  }
  const std::uint64_t l1_frame = *backing;
  if (reclaim.frames > 0) {
    // The sweep itself ran synchronously (atomic w.r.t. other tasks); charge
    // its cost here, attributed to a reclaim phase for obs.
    if (flight::FlightRecorder* flight = sim_->flight()) {
      flight->record(flight::EventKind::kReclaim, reclaim.frames, reclaim.leaves_zapped);
    }
    obs::SpanScope reclaim_span(sim_->spans(), obs::Phase::kReclaim, gva);
    co_await sim_->delay(costs_->spt_fill +
                         reclaim.leaves_zapped * costs_->spt_bulk_zap_per_page +
                         costs_->tlb_shootdown);
  }
  if (allocated) {
    co_await sim_->delay(costs_->gpa_map_fill);
  }
  co_await sim_->delay(costs_->spt_sync_check);
  bool fresh = false;
  {
    // Revalidate against the live guest PT (the mmu_notifier-sequence
    // analogue): the caller's GPT read may predate a protect/clear whose zap
    // has already completed, and installing from it would resurrect a dead
    // or widened-away translation. Any zap ordered *after* this point is
    // either serialized behind our rmap lock or caught by the backpointer
    // recheck below, so the window is closed.
    if (const PageTable* guest_pt = shadow_for(pid).guest_pt; guest_pt != nullptr) {
      const Pte* current = guest_pt->find_pte(gva);
      if (current == nullptr || !current->present() || current->frame_number() != gfn ||
          (gpt_leaf.writable() && !current->writable())) {
        counters_->add(Counter::kSptFillRaced);
        if (flight::FlightRecorder* flight = sim_->flight()) {
          flight->record(flight::EventKind::kSptFill, gva, pid, 2);
        }
        co_return true;
      }
    }
    auto bp = leaf_gfn_.find(key);
    if (bp != leaf_gfn_.end() && bp->second != gfn) {
      // The leaf already translates a different gfn; this fill read a guest
      // PTE that has since been overwritten. Abort — the refault retries
      // against the current guest state.
      counters_->add(Counter::kSptFillRaced);
      if (flight::FlightRecorder* flight = sim_->flight()) {
        flight->record(flight::EventKind::kSptFill, gva, pid, 2);
      }
      co_return true;
    }
    if (bp == leaf_gfn_.end()) {
      fresh = true;
      leaf_gfn_.emplace(key, gfn);
      note_leaves(+1);
      rmap_.try_emplace(gfn).first->second.push_back(RmapEntry{pid, kernel_ring, gva},
                                                     rmap_slab_);
    }
  }

  // Phase 3: install the SPT leaf. Structural changes take the meta lock;
  // plain leaf stores only the per-shadow-page pt_lock.
  // (Deliberately an if/else, not a conditional expression: GCC 12
  // miscompiles `cond ? co_await a : co_await b` into an extra release.)
  {
    // In coarse mode every accessor is the one mmu_lock, which phase 2
    // already holds — the whole fault then runs under it, as in KVM.
    Resource& install_lock =
        structural ? locks_.meta_lock() : locks_.pt_lock(probe.node_frames[kPageTableLevels - 1]);
    ScopedResource guard;
    if (&install_lock != &rmap_lock) {
      guard = co_await install_lock.scoped();
    }
    // Revalidate: a bulk zap or teardown (which takes only the meta lock)
    // may have swept this translation away while we slept on the lock above
    // — the analogue of KVM's mmu_notifier sequence retry. Installing now
    // would resurrect a dead leaf, so abort and let the refault retry.
    auto recheck = leaf_gfn_.find(key);
    if (recheck == leaf_gfn_.end() || recheck->second != gfn) {
      if (fresh) {
        if (auto rit = rmap_.find(gfn); rit != rmap_.end()) {
          rit->second.erase(RmapEntry{pid, kernel_ring, gva}, rmap_slab_);
        }
      }
      counters_->add(Counter::kSptFillRaced);
      if (flight::FlightRecorder* flight = sim_->flight()) {
        flight->record(flight::EventKind::kSptFill, gva, pid, 2);
      }
      co_return true;
    }
    PteFlags flags = gpt_leaf.flags();
    flags.present = true;
    // The guest user must never reach kernel-half translations; the shadow
    // tables inherit the guest's user bit as-is.
    table.map(gva, l1_frame, flags);
    counters_->add(Counter::kSptEntryFilled);
    if (is_prefault) {
      counters_->add(Counter::kPrefaultFill);
    }
    co_await sim_->delay(costs_->spt_fill);
  }
  if (flight::FlightRecorder* flight = sim_->flight()) {
    flight->record(flight::EventKind::kSptFill, gva, pid, is_prefault ? 1 : 0);
  }
  trace_->emit(sim_->now(), TraceActor::kL1Hypervisor, TraceEventKind::kSptFill,
               is_prefault ? "prefault" : "fill", gva);
  maybe_check_after_mutation();
  co_return true;
}

Task<void> PvmMemoryEngine::emulate_gpt_store(std::uint64_t pid, std::uint64_t gva,
                                              GptStoreKind kind, Tlb& tlb, std::uint16_t vpid,
                                              std::uint64_t emulation_work_ns) {
  obs::SpanScope span(sim_->spans(), obs::Phase::kGptEmulate, gva);
  MutationScope mutation(this);
  counters_->add(Counter::kGptWriteProtectTrap);
  if (flight::FlightRecorder* flight = sim_->flight()) {
    flight->record(flight::EventKind::kGptEmulate, gva, pid,
                   static_cast<std::uint8_t>(kind));
  }
  // Decode + emulate the store under the structural lock, as KVM's
  // kvm_mmu_pte_write does under mmu_lock.
  {
    ScopedResource guard = co_await locks_.meta_lock().scoped();
    co_await sim_->delay(emulation_work_ns + costs_->spt_sync_check);
  }
  switch (kind) {
    case GptStoreKind::kTableAlloc:
    case GptStoreKind::kMakeWritable:
      // Widened guest mapping: any existing shadow leaf is merely stricter
      // than the guest's, which is safe; the SPT widens lazily on the next
      // write fault (or via prefault).
      break;
    case GptStoreKind::kInstall:
      // A store over an already-shadowed slot (COW break installing a new
      // frame) must drop the stale leaf, as kvm_mmu_pte_write does. For the
      // common demand-paging case nothing is shadowed yet and the zap falls
      // through at zero cost.
    case GptStoreKind::kClear:
    case GptStoreKind::kWriteProtect:
      // Narrowing change: the shadow tables must not outlive the guest
      // mapping. Zap and flush.
      co_await zap_gva(pid, gva, tlb, vpid);
      break;
  }
  maybe_check_after_mutation();
}

Task<void> PvmMemoryEngine::zap_one_ring(std::uint64_t pid, std::uint64_t gva, bool kernel_ring,
                                         Tlb& tlb, std::uint16_t vpid) {
  obs::SpanScope span(sim_->spans(), obs::Phase::kZap, gva);
  PageTable& table = spt(pid, kernel_ring);
  const LeafKey key{pid, kernel_ring, gva};
  for (;;) {
    auto bp = leaf_gfn_.find(key);
    if (bp == leaf_gfn_.end()) {
      // Nothing shadowed (backpointer and leaf are created/destroyed
      // together under the rmap lock), so the zap is free.
      co_return;
    }
    const std::uint64_t gfn = bp->second;
    Resource& rmap_lock = locks_.rmap_lock(gfn);
    ScopedResource rmap_guard = co_await rmap_lock.scoped();
    // Revalidate after the wait: another zap (or a bulk teardown) may have
    // removed or replaced the translation while we slept.
    auto recheck = leaf_gfn_.find(key);
    if (recheck == leaf_gfn_.end() || recheck->second != gfn) {
      continue;  // re-read the backpointer under current state
    }
    const WalkResult probe = table.walk(gva, AccessType::kRead, false);
    Resource& pt_lock = locks_.pt_lock(probe.node_frames[kPageTableLevels - 1]);
    ScopedResource pt_guard;
    if (&pt_lock != &rmap_lock) {  // coarse mode: one mmu_lock, already held
      pt_guard = co_await pt_lock.scoped();
    }
    // A bulk zap takes only the meta lock, so it can still sweep past while
    // we wait for the pt lock — check once more before mutating.
    auto post = leaf_gfn_.find(key);
    if (post == leaf_gfn_.end() || post->second != gfn) {
      co_return;
    }
    table.unmap(gva);
    if (auto rit = rmap_.find(gfn); rit != rmap_.end()) {
      rit->second.erase(RmapEntry{pid, kernel_ring, gva}, rmap_slab_);
    }
    leaf_gfn_.erase(post);
    note_leaves(-1);
    if (flight::FlightRecorder* flight = sim_->flight()) {
      flight->record(flight::EventKind::kZap, gva, pid);
    }
    co_await sim_->delay(costs_->spt_fill);
    const std::size_t vcpus = vcpu_count_ ? vcpu_count_() : 1;
    obs::SpanScope shootdown(sim_->spans(), obs::Phase::kTlbShootdown);
    if (options_.pcid_mapping) {
      const PcidMapper::Mapping mapping = pcid_mapper_.map(pid, kernel_ring);
      tlb.flush_page(vpid, mapping.hw_pcid, page_number(gva));
      // Targeted INVLPG shootdown: one IPI burst, constant-ish cost.
      co_await sim_->delay(costs_->tlb_shootdown / 4);
    } else {
      tlb.flush_page(vpid, 0, page_number(gva));
      // Traditional shadow paging flushes the shared VPID tag on every vCPU
      // running this guest: the shootdown scales with concurrency.
      co_await sim_->delay(costs_->tlb_shootdown +
                           (vcpus > 1 ? (vcpus - 1) * (costs_->tlb_shootdown / 2) : 0));
    }
    co_return;
  }
}

Task<void> PvmMemoryEngine::zap_gva(std::uint64_t pid, std::uint64_t gva, Tlb& tlb,
                                    std::uint16_t vpid) {
  MutationScope mutation(this);
  co_await zap_one_ring(pid, gva, true, tlb, vpid);
  if (options_.dual_spt) {
    co_await zap_one_ring(pid, gva, false, tlb, vpid);
  }
  maybe_check_after_mutation();
}

Task<void> PvmMemoryEngine::bulk_zap(std::uint64_t pid, Tlb& tlb, std::uint16_t vpid) {
  obs::SpanScope span(sim_->spans(), obs::Phase::kZap);
  MutationScope mutation(this);
  ProcessShadow& shadow = shadow_for(pid);
  ScopedResource guard = co_await locks_.meta_lock().scoped();
  std::uint64_t leaves = shadow.kernel_spt->present_leaf_count();
  shadow.kernel_spt->clear();
  if (options_.dual_spt) {
    leaves += shadow.user_spt->present_leaf_count();
    shadow.user_spt->clear();
  }
  erase_process_rmap_state(pid);
  if (flight::FlightRecorder* flight = sim_->flight()) {
    flight->record(flight::EventKind::kBulkZap, leaves, pid);
  }
  co_await sim_->delay(costs_->spt_fill + leaves * costs_->spt_bulk_zap_per_page);
  if (options_.pcid_mapping) {
    tlb.flush_pcid(vpid, pcid_mapper_.map(pid, true).hw_pcid);
    if (options_.dual_spt) {
      tlb.flush_pcid(vpid, pcid_mapper_.map(pid, false).hw_pcid);
    }
  } else {
    tlb.flush_vpid(vpid);
  }
  maybe_check_after_mutation();
}

Task<std::uint16_t> PvmMemoryEngine::activate(std::uint64_t pid, bool kernel_ring, Tlb& tlb,
                                              std::uint16_t vpid) {
  co_await sim_->delay(costs_->cr3_write);
  if (options_.pcid_mapping) {
    const PcidMapper::Mapping mapping = pcid_mapper_.map(pid, kernel_ring);
    if (mapping.stolen) {
      // Recycled slot: its previous owner's entries must not be visible.
      tlb.flush_pcid(vpid, mapping.hw_pcid);
      counters_->add(Counter::kTlbFlushPcid);
    } else {
      counters_->add(Counter::kTlbFlushAvoided);
    }
    co_return mapping.hw_pcid;
  }
  // Traditional shadow paging: all of the guest shares the VPID tag, so the
  // switch flushes everything the guest had in the TLB.
  tlb.flush_vpid(vpid);
  counters_->add(Counter::kTlbFlushAll);
  co_return 0;
}

// ---- Coherence oracle ----

void PvmMemoryEngine::maybe_check_after_mutation() const {
  // Only fire when the completing mutator is the sole one in flight: a
  // half-applied concurrent mutation is pending work, not a violation.
  if (!oracle_enabled_ || inflight_mutations_ > 1) {
    return;
  }
  verify_coherence(false);
}

void PvmMemoryEngine::verify_coherence(bool strict) const {
  const std::vector<std::string> violations = check_coherence(strict);
  if (violations.empty()) {
    return;
  }
  std::string what = name_ + ": SPT coherence violated (" +
                     std::to_string(violations.size()) + " finding(s)):";
  for (const std::string& v : violations) {
    what += "\n  - " + v;
  }
  throw SptCoherenceError(what);
}

std::vector<std::string> PvmMemoryEngine::check_coherence(bool strict) const {
  std::vector<std::string> violations;
  auto describe = [](std::uint64_t pid, bool kernel_ring, std::uint64_t gva) {
    return "pid=" + std::to_string(pid) + (kernel_ring ? " ring0" : " ring3") +
           " gva=0x" + std::to_string(gva);
  };

  std::vector<std::uint64_t> pids;
  pids.reserve(shadows_.size());
  for (const auto& [pid, shadow] : shadows_) {
    pids.push_back(pid);
  }
  std::sort(pids.begin(), pids.end());

  // 1. Every installed shadow leaf has a backpointer, agrees with
  //    gpa_map(gfn), and (dual-SPT) the user table holds no kernel-half gva.
  for (const std::uint64_t pid : pids) {
    const auto& shadow = shadows_.at(pid);
    const PageTable* tables[2] = {shadow.kernel_spt.get(), shadow.user_spt.get()};
    const bool rings[2] = {true, false};
    for (int i = 0; i < 2; ++i) {
      if (tables[i] == nullptr) {
        continue;
      }
      const bool kernel_ring = rings[i];
      tables[i]->for_each_leaf([&](std::uint64_t gva, const Pte& pte) {
        const auto bp = leaf_gfn_.find(LeafKey{pid, kernel_ring, gva});
        if (bp == leaf_gfn_.end()) {
          violations.push_back("shadow leaf without gfn backpointer: " +
                               describe(pid, kernel_ring, gva));
        } else {
          const Pte* mapping = gpa_map_.find_pte(bp->second << kPageShift);
          if (mapping == nullptr || !mapping->present()) {
            violations.push_back("shadow leaf gfn missing from gpa_map: " +
                                 describe(pid, kernel_ring, gva) + " gfn=" +
                                 std::to_string(bp->second));
          } else if (mapping->frame_number() != pte.frame_number()) {
            violations.push_back("shadow leaf frame disagrees with gpa_map∘gfn: " +
                                 describe(pid, kernel_ring, gva) + " leaf->" +
                                 std::to_string(pte.frame_number()) + " gpa_map->" +
                                 std::to_string(mapping->frame_number()));
          }
        }
        if (!kernel_ring && gva >= kGuestKernelHalfBase) {
          violations.push_back("KPTI violated: kernel-half translation in user SPT: " +
                               describe(pid, kernel_ring, gva));
        }
      });
    }
  }

  // 2. Every backpointer has a present leaf and exactly one rmap entry.
  for (const auto& [key, gfn] : leaf_gfn_) {
    const auto [pid, kernel_ring, gva] = key;
    const auto shadow_it = shadows_.find(pid);
    if (shadow_it == shadows_.end()) {
      violations.push_back("backpointer for destroyed process: " +
                           describe(pid, kernel_ring, gva));
      continue;
    }
    const Pte* leaf = spt(pid, kernel_ring).find_pte(gva);
    if (leaf == nullptr || !leaf->present()) {
      violations.push_back("backpointer without shadow leaf: " +
                           describe(pid, kernel_ring, gva));
    }
    std::size_t matches = 0;
    if (const auto rit = rmap_.find(gfn); rit != rmap_.end()) {
      matches = rit->second.count(RmapEntry{pid, kernel_ring, gva});
    }
    if (matches != 1) {
      violations.push_back("rmap entry count for leaf is " + std::to_string(matches) +
                           " (want 1): " + describe(pid, kernel_ring, gva) + " gfn=" +
                           std::to_string(gfn));
    }
  }

  // 3. Every rmap entry corresponds to a live backpointer for the same gfn
  //    (no stale entries left behind by zaps or teardowns).
  std::vector<std::uint64_t> gfns;
  gfns.reserve(rmap_.size());
  for (const auto& [gfn, entries] : rmap_) {
    gfns.push_back(gfn);
  }
  std::sort(gfns.begin(), gfns.end());
  for (const std::uint64_t gfn : gfns) {
    for (const RmapEntry& entry : rmap_.at(gfn)) {
      const auto bp = leaf_gfn_.find(LeafKey{entry.pid, entry.kernel_ring, entry.gva});
      if (bp == leaf_gfn_.end() || bp->second != gfn) {
        violations.push_back("stale rmap entry: " +
                             describe(entry.pid, entry.kernel_ring, entry.gva) + " gfn=" +
                             std::to_string(gfn));
      }
    }
  }

  // 4. Strict (quiescent points only): every shadow leaf agrees with
  //    guest-PT ∘ gpa_map — the gfn it caches is what the guest currently
  //    maps, and it is never more permissive than the guest.
  if (strict) {
    for (const std::uint64_t pid : pids) {
      const auto& shadow = shadows_.at(pid);
      if (shadow.guest_pt == nullptr) {
        continue;  // no reference table registered; structural checks only
      }
      const PageTable* tables[2] = {shadow.kernel_spt.get(), shadow.user_spt.get()};
      const bool rings[2] = {true, false};
      for (int i = 0; i < 2; ++i) {
        if (tables[i] == nullptr) {
          continue;
        }
        const bool kernel_ring = rings[i];
        tables[i]->for_each_leaf([&](std::uint64_t gva, const Pte& pte) {
          const Pte* guest = shadow.guest_pt->find_pte(gva);
          if (guest == nullptr || !guest->present()) {
            violations.push_back("shadow leaf outlives guest mapping: " +
                                 describe(pid, kernel_ring, gva));
            return;
          }
          const auto bp = leaf_gfn_.find(LeafKey{pid, kernel_ring, gva});
          if (bp != leaf_gfn_.end() && bp->second != guest->frame_number()) {
            violations.push_back("shadow leaf caches gfn " + std::to_string(bp->second) +
                                 " but guest maps gfn " +
                                 std::to_string(guest->frame_number()) + ": " +
                                 describe(pid, kernel_ring, gva));
          }
          if (pte.writable() && !guest->writable()) {
            violations.push_back("shadow leaf writable but guest mapping read-only: " +
                                 describe(pid, kernel_ring, gva));
          }
        });
      }
    }
  }
  return violations;
}

// ---- Test hooks ----

bool PvmMemoryEngine::debug_corrupt_spt_leaf(std::uint64_t pid, bool kernel_ring,
                                             std::uint64_t gva) {
  PageTable& table = spt(pid, kernel_ring);
  return table.update_pte(gva, [](Pte& pte) {
    pte = Pte::make(pte.frame_number() + 1, pte.flags());
  });
}

bool PvmMemoryEngine::debug_plant_violation() {
  // Prefer corrupting a live tracked leaf (first in (pid, ring, gva) order,
  // so the choice is interleaving-independent). At a fully torn-down
  // quiescent point there may be none left; fall back to planting a
  // dangling backpointer, which the structural oracle reports as
  // "backpointer for destroyed process".
  for (const auto& [key, gfn] : leaf_gfn_) {
    const auto& [pid, kernel_ring, gva] = key;
    if (debug_corrupt_spt_leaf(pid, kernel_ring, gva)) {
      return true;
    }
  }
  leaf_gfn_.emplace(LeafKey{std::numeric_limits<std::uint64_t>::max(), false, 0}, 0);
  return true;
}

bool PvmMemoryEngine::debug_drop_rmap_entry(std::uint64_t pid, bool kernel_ring,
                                            std::uint64_t gva) {
  const auto bp = leaf_gfn_.find(LeafKey{pid, kernel_ring, gva});
  if (bp == leaf_gfn_.end()) {
    return false;
  }
  const auto rit = rmap_.find(bp->second);
  if (rit == rmap_.end()) {
    return false;
  }
  return rit->second.erase(RmapEntry{pid, kernel_ring, gva}, rmap_slab_) > 0;
}

bool PvmMemoryEngine::debug_duplicate_rmap_entry(std::uint64_t pid, bool kernel_ring,
                                                 std::uint64_t gva) {
  const auto bp = leaf_gfn_.find(LeafKey{pid, kernel_ring, gva});
  if (bp == leaf_gfn_.end()) {
    return false;
  }
  rmap_.try_emplace(bp->second)
      .first->second.push_back(RmapEntry{pid, kernel_ring, gva}, rmap_slab_);
  return true;
}

bool PvmMemoryEngine::debug_install_kernel_leaf_in_user_spt(std::uint64_t pid,
                                                            std::uint64_t gva) {
  if (!options_.dual_spt || gva < kGuestKernelHalfBase) {
    return false;
  }
  ProcessShadow& shadow = shadow_for(pid);
  shadow.user_spt->map(gva, /*frame_number=*/1, PteFlags::rw_user());
  return true;
}

void PvmMemoryEngine::checkpoint_to_wal(wal::Log& log) const {
  log.append(wal::RecordType::kSnapshotBegin, name_);
  // gpa_map in ascending GPA order (for_each_leaf walks the radix tree in
  // address order).
  gpa_map_.for_each_leaf([&log](std::uint64_t va, const Pte& pte) {
    std::string payload;
    wal::put_u64(payload, va);
    wal::put_u64(payload, pte.frame_number());
    wal::put_u64(payload, pte.raw());
    log.append(wal::RecordType::kGpaMapEntry, payload);
  });
  // Shadow leaves in (pid, ring, gva) backpointer order — the same
  // deterministic order the oracle and reclaim sweeps use.
  for (const auto& [key, gfn] : leaf_gfn_) {
    const auto& [pid, kernel_ring, gva] = key;
    const Pte* leaf = spt(pid, kernel_ring).find_pte(gva);
    if (leaf == nullptr || !leaf->present()) {
      continue;  // mid-zap backpointer; the refault after restore refills it
    }
    std::string payload;
    wal::put_u64(payload, pid);
    wal::put_u64(payload, kernel_ring ? 1 : 0);
    wal::put_u64(payload, gva);
    wal::put_u64(payload, leaf->frame_number());
    wal::put_u64(payload, leaf->raw());
    wal::put_u64(payload, gfn);
    log.append(wal::RecordType::kShadowLeaf, payload);
  }
  log.append_checkpoint(name_);
}

bool PvmMemoryEngine::restore_from_records(const std::vector<wal::Record>& records,
                                           std::string* error) {
  const auto fail = [error](const std::string& what) {
    if (error != nullptr) {
      *error = what;
    }
    return false;
  };
  for (const wal::Record& record : records) {
    std::size_t cursor = 0;
    switch (record.type) {
      case wal::RecordType::kGpaMapEntry: {
        std::uint64_t va = 0, frame = 0, raw = 0;
        if (!wal::get_u64(record.payload, &cursor, &va) ||
            !wal::get_u64(record.payload, &cursor, &frame) ||
            !wal::get_u64(record.payload, &cursor, &raw)) {
          return fail("short gpa-map record at seq " + std::to_string(record.seq));
        }
        gpa_map_.map(va, frame, Pte(raw).flags());
        break;
      }
      case wal::RecordType::kShadowLeaf: {
        std::uint64_t pid = 0, ring = 0, gva = 0, frame = 0, raw = 0, gfn = 0;
        if (!wal::get_u64(record.payload, &cursor, &pid) ||
            !wal::get_u64(record.payload, &cursor, &ring) ||
            !wal::get_u64(record.payload, &cursor, &gva) ||
            !wal::get_u64(record.payload, &cursor, &frame) ||
            !wal::get_u64(record.payload, &cursor, &raw) ||
            !wal::get_u64(record.payload, &cursor, &gfn)) {
          return fail("short shadow-leaf record at seq " + std::to_string(record.seq));
        }
        if (!has_process(pid)) {
          // The guest PT reference does not survive a crash; restored
          // processes verify under the structural (non-strict) oracle.
          create_process(pid);
        }
        const bool kernel_ring = ring != 0;
        spt(pid, kernel_ring).map(gva, frame, Pte(raw).flags());
        leaf_gfn_[LeafKey{pid, kernel_ring, gva}] = gfn;
        rmap_.try_emplace(gfn).first->second.push_back(RmapEntry{pid, kernel_ring, gva},
                                                       rmap_slab_);
        note_leaves(+1);
        break;
      }
      default:
        // Snapshot framing, migration dirty-log records, and checkpoint
        // markers interleave freely in the same stream; ignore them here.
        break;
    }
  }
  return true;
}

}  // namespace pvm
