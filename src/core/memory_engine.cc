#include "src/core/memory_engine.h"

#include <stdexcept>

namespace pvm {

PvmMemoryEngine::PvmMemoryEngine(Simulation& sim, const CostModel& costs, CounterSet& counters,
                                 TraceLog& trace, FrameAllocator& l1_frames, std::string name,
                                 const Options& options)
    : sim_(&sim),
      costs_(&costs),
      counters_(&counters),
      trace_(&trace),
      l1_frames_(&l1_frames),
      name_(std::move(name)),
      options_(options),
      locks_(sim, name_, options.fine_grained_locks),
      gpa_map_(name_ + ".gpa_map", nullptr) {}

void PvmMemoryEngine::create_process(std::uint64_t pid) {
  ProcessShadow shadow;
  shadow.kernel_spt =
      std::make_unique<PageTable>(name_ + ".spt_k." + std::to_string(pid), l1_frames_);
  if (options_.dual_spt) {
    shadow.user_spt =
        std::make_unique<PageTable>(name_ + ".spt_u." + std::to_string(pid), l1_frames_);
  }
  shadows_[pid] = std::move(shadow);
}

void PvmMemoryEngine::destroy_process(std::uint64_t pid, Tlb& tlb, std::uint16_t vpid) {
  auto it = shadows_.find(pid);
  if (it == shadows_.end()) {
    return;
  }
  // Drop reverse-map entries pointing at this process.
  for (auto& [gfn, entries] : rmap_) {
    std::erase_if(entries, [pid](const RmapEntry& e) { return e.pid == pid; });
  }
  // Flush any TLB entries tagged with the process's mapped PCIDs. Without
  // PCID mapping all processes share the VPID tag, so flush it whole.
  if (options_.pcid_mapping) {
    const PcidMapper::Mapping kernel = pcid_mapper_.map(pid, true);
    tlb.flush_pcid(vpid, kernel.hw_pcid);
    if (options_.dual_spt) {
      const PcidMapper::Mapping user = pcid_mapper_.map(pid, false);
      tlb.flush_pcid(vpid, user.hw_pcid);
    }
    pcid_mapper_.release(pid);
  } else {
    tlb.flush_vpid(vpid);
  }
  shadows_.erase(it);
}

PvmMemoryEngine::ProcessShadow& PvmMemoryEngine::shadow_for(std::uint64_t pid) {
  auto it = shadows_.find(pid);
  if (it == shadows_.end()) {
    throw std::logic_error(name_ + ": no shadow tables for pid " + std::to_string(pid));
  }
  return it->second;
}

PageTable& PvmMemoryEngine::spt(std::uint64_t pid, bool kernel_ring) {
  ProcessShadow& shadow = shadow_for(pid);
  if (!kernel_ring && options_.dual_spt) {
    return *shadow.user_spt;
  }
  return *shadow.kernel_spt;
}

const PageTable& PvmMemoryEngine::spt(std::uint64_t pid, bool kernel_ring) const {
  auto it = shadows_.find(pid);
  if (it == shadows_.end()) {
    throw std::logic_error(name_ + ": no shadow tables for pid " + std::to_string(pid));
  }
  if (!kernel_ring && options_.dual_spt) {
    return *it->second.user_spt;
  }
  return *it->second.kernel_spt;
}

std::uint64_t PvmMemoryEngine::spt_leaves(std::uint64_t pid, bool kernel_ring) const {
  return spt(pid, kernel_ring).present_leaf_count();
}

std::uint64_t PvmMemoryEngine::shadow_table_frames() const {
  std::uint64_t total = gpa_map_.node_count();
  for (const auto& [pid, shadow] : shadows_) {
    total += shadow.kernel_spt->node_count();
    if (shadow.user_spt) {
      total += shadow.user_spt->node_count();
    }
  }
  return total;
}

std::uint64_t PvmMemoryEngine::translate_or_allocate_gpa(std::uint64_t gpa_frame,
                                                         bool* allocated) {
  const std::uint64_t gpa = gpa_frame << kPageShift;
  if (const Pte* existing = gpa_map_.find_pte(gpa); existing != nullptr && existing->present()) {
    if (allocated != nullptr) {
      *allocated = false;
    }
    return existing->frame_number();
  }
  const std::uint64_t l1_frame = l1_frames_->allocate_or_throw();
  gpa_map_.map(gpa, l1_frame, PteFlags::rw_kernel());
  if (allocated != nullptr) {
    *allocated = true;
  }
  return l1_frame;
}

Task<void> PvmMemoryEngine::fill_spt(std::uint64_t pid, std::uint64_t gva, bool kernel_ring,
                                     Pte gpt_leaf, bool is_prefault) {
  PageTable& table = spt(pid, kernel_ring);
  const std::uint64_t gfn = gpt_leaf.frame_number();

  // Phase 1 (lock-free, one of PVM's optimizations): walk the shadow table
  // to find out whether this fill is structural (needs new shadow pages) or
  // a plain leaf install.
  const WalkResult probe = table.walk(gva, AccessType::kRead, false);
  const bool structural = probe.missing_level > 1;
  co_await sim_->delay(static_cast<std::uint64_t>(probe.levels_walked) * costs_->walk_load);

  // Phase 2: translate GPA_L2 -> GPA_L1 under the gfn's rmap lock.
  std::uint64_t l1_frame = 0;
  {
    ScopedResource rmap_guard = co_await locks_.rmap_lock(gfn).scoped();
    bool allocated = false;
    l1_frame = translate_or_allocate_gpa(gfn, &allocated);
    if (allocated) {
      co_await sim_->delay(costs_->gpa_map_fill);
    }
    rmap_.try_emplace(gfn).first->second.push_back(RmapEntry{pid, kernel_ring, gva});
    co_await sim_->delay(costs_->spt_sync_check);
  }

  // Phase 3: install the SPT leaf. Structural changes take the meta lock;
  // plain leaf stores only the per-shadow-page pt_lock.
  // (Deliberately an if/else, not a conditional expression: GCC 12
  // miscompiles `cond ? co_await a : co_await b` into an extra release.)
  {
    ScopedResource guard;
    if (structural) {
      guard = co_await locks_.meta_lock().scoped();
    } else {
      guard = co_await locks_.pt_lock(probe.node_frames[kPageTableLevels - 1]).scoped();
    }
    PteFlags flags = gpt_leaf.flags();
    flags.present = true;
    // The guest user must never reach kernel-half translations; the shadow
    // tables inherit the guest's user bit as-is.
    table.map(gva, l1_frame, flags);
    counters_->add(Counter::kSptEntryFilled);
    if (is_prefault) {
      counters_->add(Counter::kPrefaultFill);
    }
    co_await sim_->delay(costs_->spt_fill);
  }
  trace_->emit(sim_->now(), TraceActor::kL1Hypervisor,
               std::string(is_prefault ? "prefault" : "fill") + " SPT12 gva=" +
                   std::to_string(gva));
}

Task<void> PvmMemoryEngine::emulate_gpt_store(std::uint64_t pid, std::uint64_t gva,
                                              GptStoreKind kind, Tlb& tlb, std::uint16_t vpid,
                                              std::uint64_t emulation_work_ns) {
  counters_->add(Counter::kGptWriteProtectTrap);
  // Decode + emulate the store under the structural lock, as KVM's
  // kvm_mmu_pte_write does under mmu_lock.
  {
    ScopedResource guard = co_await locks_.meta_lock().scoped();
    co_await sim_->delay(emulation_work_ns + costs_->spt_sync_check);
  }
  switch (kind) {
    case GptStoreKind::kInstall:
    case GptStoreKind::kTableAlloc:
    case GptStoreKind::kMakeWritable:
      // New or widened guest mapping: nothing to synchronize yet — the SPT
      // fills lazily (or via prefault).
      break;
    case GptStoreKind::kClear:
    case GptStoreKind::kWriteProtect:
      // Narrowing change: the shadow tables must not outlive the guest
      // mapping. Zap and flush.
      co_await zap_gva(pid, gva, tlb, vpid);
      break;
  }
}

Task<void> PvmMemoryEngine::zap_gva(std::uint64_t pid, std::uint64_t gva, Tlb& tlb,
                                    std::uint16_t vpid) {
  ProcessShadow& shadow = shadow_for(pid);
  auto zap_one = [&](PageTable& table, bool kernel_ring) -> Task<void> {
    const WalkResult probe = table.walk(gva, AccessType::kRead, false);
    if (!probe.present) {
      co_return;
    }
    ScopedResource guard =
        co_await locks_.pt_lock(probe.node_frames[kPageTableLevels - 1]).scoped();
    table.unmap(gva);
    co_await sim_->delay(costs_->spt_fill);
    const std::size_t vcpus = vcpu_count_ ? vcpu_count_() : 1;
    if (options_.pcid_mapping) {
      const PcidMapper::Mapping mapping = pcid_mapper_.map(pid, kernel_ring);
      tlb.flush_page(vpid, mapping.hw_pcid, page_number(gva));
      // Targeted INVLPG shootdown: one IPI burst, constant-ish cost.
      co_await sim_->delay(costs_->tlb_shootdown / 4);
    } else {
      tlb.flush_page(vpid, 0, page_number(gva));
      // Traditional shadow paging flushes the shared VPID tag on every vCPU
      // running this guest: the shootdown scales with concurrency.
      co_await sim_->delay(costs_->tlb_shootdown +
                           (vcpus > 1 ? (vcpus - 1) * (costs_->tlb_shootdown / 2) : 0));
    }
  };
  co_await zap_one(*shadow.kernel_spt, true);
  if (options_.dual_spt) {
    co_await zap_one(*shadow.user_spt, false);
  }
}

Task<void> PvmMemoryEngine::bulk_zap(std::uint64_t pid, Tlb& tlb, std::uint16_t vpid) {
  ProcessShadow& shadow = shadow_for(pid);
  ScopedResource guard = co_await locks_.meta_lock().scoped();
  std::uint64_t leaves = shadow.kernel_spt->present_leaf_count();
  shadow.kernel_spt->clear();
  if (options_.dual_spt) {
    leaves += shadow.user_spt->present_leaf_count();
    shadow.user_spt->clear();
  }
  for (auto& [gfn, entries] : rmap_) {
    std::erase_if(entries, [pid](const RmapEntry& e) { return e.pid == pid; });
  }
  co_await sim_->delay(costs_->spt_fill + leaves * costs_->spt_bulk_zap_per_page);
  if (options_.pcid_mapping) {
    tlb.flush_pcid(vpid, pcid_mapper_.map(pid, true).hw_pcid);
    if (options_.dual_spt) {
      tlb.flush_pcid(vpid, pcid_mapper_.map(pid, false).hw_pcid);
    }
  } else {
    tlb.flush_vpid(vpid);
  }
}

Task<std::uint16_t> PvmMemoryEngine::activate(std::uint64_t pid, bool kernel_ring, Tlb& tlb,
                                              std::uint16_t vpid) {
  co_await sim_->delay(costs_->cr3_write);
  if (options_.pcid_mapping) {
    const PcidMapper::Mapping mapping = pcid_mapper_.map(pid, kernel_ring);
    if (mapping.stolen) {
      // Recycled slot: its previous owner's entries must not be visible.
      tlb.flush_pcid(vpid, mapping.hw_pcid);
      counters_->add(Counter::kTlbFlushPcid);
    } else {
      counters_->add(Counter::kTlbFlushAvoided);
    }
    co_return mapping.hw_pcid;
  }
  // Traditional shadow paging: all of the guest shares the VPID tag, so the
  // switch flushes everything the guest had in the TLB.
  tlb.flush_vpid(vpid);
  counters_->add(Counter::kTlbFlushAll);
  co_return 0;
}

}  // namespace pvm
