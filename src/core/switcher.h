// The PVM switcher (paper §3.2).
//
// A per-CPU region of code and data mapped at identical virtual addresses in
// the L1 hypervisor, L2 guest kernel, and L2 guest user address spaces. It
// performs world switches entirely inside the L1 VM:
//
//   - VM exit:  guest (h_ring3) --syscall/hypercall/interrupt--> switcher
//               (h_ring0) --to_hypervisor--> L1 hypervisor
//   - VM entry: L1 hypervisor --enter_guest--> guest (h_ring3)
//   - direct switch: guest user --syscall--> switcher --> guest kernel, and
//     back via the sysret hypercall, without ever entering the hypervisor.
//
// Every transition saves/restores the per-CPU switcher state (the software
// VMCS analogue) and clears general-purpose registers on exit to prevent
// speculative leaks between worlds. The switcher region is mapped global so
// its TLB entries survive all flushes.

#ifndef PVM_SRC_CORE_SWITCHER_H_
#define PVM_SRC_CORE_SWITCHER_H_

#include <cstdint>

#include "src/arch/apic.h"
#include "src/arch/cost_model.h"
#include "src/arch/cpu_state.h"
#include "src/metrics/counters.h"
#include "src/sim/simulation.h"
#include "src/sim/task.h"
#include "src/trace/trace.h"

namespace pvm {

// What pulled control out of the guest (selects trace text / counters).
enum class SwitchReason {
  kSyscall,
  kHypercall,
  kException,
  kInterrupt,
  kPageFault,
  kGptWriteProtect,
};

// The per-CPU switcher state block ("CPU Switcher State" in Fig. 6): the
// saved context of the world not currently running.
struct SwitcherState {
  VcpuState saved_guest;
  VcpuState saved_host;
  bool guest_running = false;
  // The shared 8-byte structure virtualizing RFLAGS.IF (§3.3.3): the guest
  // updates it without exits; the hypervisor reads it before injecting.
  bool guest_virtual_if = true;
  // A virtual interrupt that arrived while guest_virtual_if was clear,
  // waiting for the guest to re-enable interrupts.
  bool pending_interrupt = false;
  // The vCPU's virtual local APIC (the KVM APIC state PVM reuses, §3.3.3).
  VirtualApic apic;
};

class Switcher {
 public:
  Switcher(Simulation& sim, const CostModel& costs, CounterSet& counters, TraceLog& trace)
      : sim_(&sim), costs_(&costs), counters_(&counters), trace_(&trace) {}

  // World switch: L2 guest (user or kernel) -> L1 hypervisor. One PVM world
  // switch (~0.179 us): ring crossing, guest state save, register clearing,
  // host state restore.
  Task<void> to_hypervisor(SwitcherState& state, VcpuState& vcpu, SwitchReason reason);

  // World switch: L1 hypervisor -> L2 guest, entering the given virtual ring.
  Task<void> enter_guest(SwitcherState& state, VcpuState& vcpu, VirtRing target_ring);

  // Direct switch (Fig. 8): guest user -> guest kernel on syscall. Stays in
  // the switcher: swap hardware CR3 to the kernel shadow table, switch
  // cpl/stack/gs, build the syscall frame. No hypervisor entry.
  Task<void> direct_switch_to_kernel(SwitcherState& state, VcpuState& vcpu);

  // Direct switch back: guest kernel issues the sysret hypercall; the
  // switcher returns straight to guest user.
  Task<void> direct_switch_to_user(SwitcherState& state, VcpuState& vcpu);

 private:
  Simulation* sim_;
  const CostModel* costs_;
  CounterSet* counters_;
  TraceLog* trace_;
};

}  // namespace pvm

#endif  // PVM_SRC_CORE_SWITCHER_H_
