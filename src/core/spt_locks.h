// Shadow-page-table locking (paper §3.3.2, optimization 3).
//
// KVM's classic shadow MMU serializes every SPT mutation on one per-VM
// "mmu_lock". PVM splits SPT data into three groups, each with its own lock:
//   - inter-shadow-page structure (parent/child links, page collections):
//     one "meta_lock",
//   - intra-shadow-page data (the PTEs inside one shadow page): a per-shadow-
//     page "pt_lock",
//   - reverse mappings (gfn -> SPT entries): a per-gfn "rmap_lock".
// Concurrent page faults on different shadow pages / gfns then proceed in
// parallel; only structural changes serialize. In coarse mode every accessor
// returns the single mmu_lock, so benchmarks can ablate the optimization.

#ifndef PVM_SRC_CORE_SPT_LOCKS_H_
#define PVM_SRC_CORE_SPT_LOCKS_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>

#include "src/sim/resource.h"
#include "src/sim/simulation.h"

namespace pvm {

class SptLockSet {
 public:
  SptLockSet(Simulation& sim, std::string name, bool fine_grained)
      : sim_(&sim),
        name_(std::move(name)),
        fine_grained_(fine_grained),
        mmu_lock_(sim, name_ + ".mmu_lock"),
        meta_lock_(sim, name_ + ".meta_lock") {}

  bool fine_grained() const { return fine_grained_; }

  // The single coarse lock (always valid; in fine-grained mode it is unused
  // by the fault paths but still guards rare whole-table operations).
  Resource& mmu_lock() { return mmu_lock_; }

  // Lock guarding inter-shadow-page structure.
  Resource& meta_lock() { return fine_grained_ ? meta_lock_ : mmu_lock_; }

  // Lock guarding the PTEs of the shadow page backed by `shadow_table_frame`.
  Resource& pt_lock(std::uint64_t shadow_table_frame) {
    if (!fine_grained_) {
      return mmu_lock_;
    }
    return lazy_lock(pt_locks_, shadow_table_frame, ".pt_lock.");
  }

  // Lock guarding the reverse map of guest frame number `gfn`.
  Resource& rmap_lock(std::uint64_t gfn) {
    if (!fine_grained_) {
      return mmu_lock_;
    }
    return lazy_lock(rmap_locks_, gfn, ".rmap_lock.");
  }

  std::size_t pt_lock_count() const { return pt_locks_.size(); }
  std::size_t rmap_lock_count() const { return rmap_locks_.size(); }

  // True when nothing holds or queues on `gfn`'s rmap lock (fine-grained
  // mode; a lock object that was never created has trivially no holder).
  // Reclaim uses this to skip gfns with a fill or zap in flight. Coarse-mode
  // callers must not rely on it — there the single mmu_lock is typically
  // held by the caller itself.
  bool rmap_lock_idle(std::uint64_t gfn) const {
    const auto it = rmap_locks_.find(gfn);
    return it == rmap_locks_.end() ||
           (it->second->available() && it->second->queue_depth() == 0);
  }

 private:
  using LockMap = std::unordered_map<std::uint64_t, std::unique_ptr<Resource>>;

  Resource& lazy_lock(LockMap& map, std::uint64_t key, const char* suffix) {
    auto it = map.find(key);
    if (it == map.end()) {
      it = map.emplace(key, std::make_unique<Resource>(*sim_, name_ + suffix +
                                                                  std::to_string(key)))
               .first;
    }
    return *it->second;
  }

  Simulation* sim_;
  std::string name_;
  bool fine_grained_;
  Resource mmu_lock_;
  Resource meta_lock_;
  LockMap pt_locks_;
  LockMap rmap_locks_;
};

}  // namespace pvm

#endif  // PVM_SRC_CORE_SPT_LOCKS_H_
