// PVM's shadow-paging engine for one L2 guest VM (paper §3.3.2).
//
// Maintains, per guest process, a *dual* pair of shadow page tables — one for
// the guest user (v_ring3) and one for the guest kernel (v_ring0) — mapping
// GVA_L2 directly to GPA_L1, simulating KPTI for the guest. A per-VM
// `gpa_map` (KVM memslots analogue) translates GPA_L2 to GPA_L1, allocating
// L1 backing frames on demand. A reverse map (gfn -> SPT entries) supports
// zapping when the guest frees or write-protects pages.
//
// The three PVM optimizations are switchable:
//   - prefault: fill the SPT on the guest's iret path so the retried access
//     does not fault again,
//   - PCID mapping: give each (process, ring) shadow space its own hardware
//     PCID so world switches flush nothing,
//   - fine-grained locks: meta/pt/rmap locks instead of one mmu_lock.
//
// Lock order (fine-grained mode): rmap_lock(gfn) may be held while acquiring
// meta_lock or a pt_lock; never the reverse. bulk_zap takes meta_lock alone,
// so a fill that slept on meta_lock revalidates its leaf backpointer before
// installing (the analogue of KVM's mmu_notifier sequence retry) and aborts
// if a bulk zap raced past it.
//
// Coherence oracle: when enabled, after every mutation that completes while
// no other mutation is in flight, the engine re-verifies its structural
// invariants — SPT leaves, the gfn backpointer map, and the rmap form exact
// bijections, leaves agree with gpa_map, and the dual-SPT (KPTI) user table
// holds no guest-kernel-half translations. A *strict* check additionally
// verifies every shadow leaf agrees with guest-PT∘gpa_map; it is only sound
// at quiescent points (simcheck runs it between workload phases) and is
// skipped for backends with deferred PT-sync rings.

#ifndef PVM_SRC_CORE_MEMORY_ENGINE_H_
#define PVM_SRC_CORE_MEMORY_ENGINE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <tuple>
#include <unordered_map>
#include <vector>

#include "src/arch/cost_model.h"
#include "src/arch/page_table.h"
#include "src/arch/physical_memory.h"
#include "src/arch/tlb.h"
#include "src/core/pcid_mapper.h"
#include "src/core/spt_locks.h"
#include "src/metrics/counters.h"
#include "src/sim/arena.h"
#include "src/sim/simulation.h"
#include "src/sim/task.h"
#include "src/trace/trace.h"
#include "src/wal/wal.h"

namespace pvm {

// Start of the guest-kernel half of the address space (mirrors
// GuestProcess::kKernelBase; duplicated so core/ does not depend on guest/).
inline constexpr std::uint64_t kGuestKernelHalfBase = 0xffff800000000000ull;

// The semantic effect of a trapped guest page-table store.
enum class GptStoreKind {
  kInstall,       // new leaf installed (demand paging, COW break)
  kClear,         // leaf cleared (munmap)
  kWriteProtect,  // leaf write bit dropped (COW arm)
  kMakeWritable,  // leaf write bit raised (COW break, sole owner)
  kTableAlloc,    // intermediate table page installed
};

// Thrown by the coherence oracle when an SPT invariant is violated. The
// message carries the full list of violations.
class SptCoherenceError : public std::runtime_error {
 public:
  explicit SptCoherenceError(const std::string& what) : std::runtime_error(what) {}
};

class PvmMemoryEngine {
 public:
  struct Options {
    bool prefault = true;
    bool pcid_mapping = true;
    bool fine_grained_locks = true;
    bool dual_spt = true;  // separate user/kernel shadow tables (KPTI-like)
  };

  PvmMemoryEngine(Simulation& sim, const CostModel& costs, CounterSet& counters, TraceLog& trace,
                  FrameAllocator& l1_frames, std::string name, const Options& options);

  const Options& options() const { return options_; }
  SptLockSet& locks() { return locks_; }
  PcidMapper& pcid_mapper() { return pcid_mapper_; }
  PageTable& gpa_map() { return gpa_map_; }

  // ---- Process lifecycle ----

  // `guest_pt` (optional) is the process's guest page table; the strict
  // oracle checks shadow leaves against it. The engine never mutates it.
  void create_process(std::uint64_t pid, const PageTable* guest_pt = nullptr);
  void destroy_process(std::uint64_t pid, Tlb& tlb, std::uint16_t vpid);

  // Whether the engine tracks shadow tables for `pid`. False both before
  // create_process and in configurations that use the engine only for PCID
  // bookkeeping (direct paging has no shadow dimension).
  bool has_process(std::uint64_t pid) const { return shadows_.contains(pid); }

  // The active shadow table for (process, ring). With dual_spt disabled the
  // kernel table serves both rings.
  PageTable& spt(std::uint64_t pid, bool kernel_ring);
  const PageTable& spt(std::uint64_t pid, bool kernel_ring) const;

  // ---- Fault-path operations (coroutines charging virtual time) ----

  // Fills the SPT leaf for `gva` from the guest's present GPT leaf
  // `gpt_leaf`: translates GPA_L2 -> GPA_L1 through gpa_map (allocating
  // backing on demand), installs the SPT entry under the configured locks,
  // and records the reverse mapping. `is_prefault` only affects accounting.
  //
  // Returns true when the leaf is installed OR the fill benignly raced a
  // concurrent zap (Counter::kSptFillRaced; the next access refaults and
  // retries). Returns false only on backing exhaustion: the L1 allocator is
  // empty and a reclaim pass recovered nothing — the caller should OOM-kill
  // in the guest rather than retry.
  Task<bool> fill_spt(std::uint64_t pid, std::uint64_t gva, bool kernel_ring, Pte gpt_leaf,
                      bool is_prefault);

  // Emulates a trapped write to the guest page table and keeps the shadow
  // tables coherent (zap on clear/write-protect, and on install over an
  // existing shadow leaf — the COW-break case, as in kvm_mmu_pte_write).
  // `emulation_work_ns` is the scheme's instruction-emulation cost, charged
  // under the meta/mmu lock. Does not include the world switches — the
  // backend wraps this in the trap protocol.
  Task<void> emulate_gpt_store(std::uint64_t pid, std::uint64_t gva, GptStoreKind kind,
                               Tlb& tlb, std::uint16_t vpid,
                               std::uint64_t emulation_work_ns);

  // Lets the engine know how many vCPUs share the guest's address spaces:
  // remote TLB shootdowns on shadow zaps scale with it (the quadratic cost
  // traditional shadow paging pays under concurrency).
  void set_vcpu_count_provider(std::function<std::size_t()> provider) {
    vcpu_count_ = std::move(provider);
  }

  // Drops any shadow translations for (pid, gva) in both rings and flushes
  // matching TLB entries. Free when nothing is mapped.
  Task<void> zap_gva(std::uint64_t pid, std::uint64_t gva, Tlb& tlb, std::uint16_t vpid);

  // Bulk teardown: drops both of a process's shadow tables wholesale and
  // flushes its TLB footprint. Backs the PVM bulk-teardown hypercall; cost
  // scales with the number of populated shadow leaves.
  Task<void> bulk_zap(std::uint64_t pid, Tlb& tlb, std::uint16_t vpid);

  // Activates (process, ring) on a vCPU: returns the hardware PCID to run
  // with. Without PCID mapping, performs the traditional full-VPID flush.
  Task<std::uint16_t> activate(std::uint64_t pid, bool kernel_ring, Tlb& tlb,
                               std::uint16_t vpid);

  // Translates a guest-physical page to its L1 backing frame, allocating on
  // demand (cold path charged). Non-coroutine variant used inside locks.
  // Throws on allocator exhaustion (legacy behavior; fault paths use the
  // checked variant below).
  std::uint64_t translate_or_allocate_gpa(std::uint64_t gpa_frame, bool* allocated);

  // One frame-pressure reclaim pass (see translate_or_allocate_gpa_checked).
  struct ReclaimStats {
    std::uint64_t frames = 0;         // backing frames recovered
    std::uint64_t leaves_zapped = 0;  // live shadow leaves dropped to get them
  };

  // Like translate_or_allocate_gpa but degrades instead of throwing: when
  // the allocator refuses (exhaustion, injected pressure), the engine runs a
  // synchronous reclaim pass — evicting cold gpa_map translations first, then
  // stealing warm ones by zapping their shadow leaves through the rmap — and
  // hands the first recovered frame straight to this request. Returns
  // nullopt only when even reclaim found nothing (true exhaustion). `stats`
  // (optional) reports what the pass did so the caller can charge its cost.
  std::optional<std::uint64_t> translate_or_allocate_gpa_checked(std::uint64_t gpa_frame,
                                                                 bool* allocated,
                                                                 ReclaimStats* stats);

  // Called (synchronously) after a reclaim pass that zapped live shadow
  // leaves; the platform wires a conservative full-VPID TLB flush over every
  // vCPU running this engine's guest. The time is charged by the fill that
  // triggered the reclaim, under Phase::kReclaim.
  void set_reclaim_flush(std::function<void()> flush) { reclaim_flush_ = std::move(flush); }

  std::uint64_t spt_leaves(std::uint64_t pid, bool kernel_ring) const;

  // Total 4 KiB table pages held by all shadow tables plus the gpa_map —
  // the memory cost of the dual-SPT design the paper's §5 discusses.
  std::uint64_t shadow_table_frames() const;

  // Aggregated slab accounting across this engine's arenas: rmap chain
  // nodes plus the node slabs of gpa_map and every live shadow table. Feeds
  // the opt-in `alloc` section of the bench export (--alloc-stats).
  SlabStats alloc_stats() const;

  // ---- WAL checkpoint / restore (pvm::wal) ----

  // Serializes the engine's durable structure — gpa_map translations and
  // every installed shadow leaf with its gfn backpointer — as a record
  // stream ending in a checkpoint record. Deterministic: gpa_map leaves in
  // ascending GPA order, shadow leaves in leaf_gfn_ (pid, ring, gva) order.
  void checkpoint_to_wal(wal::Log& log) const;

  // Rebuilds gpa_map, shadow tables, backpointers, and the rmap from a
  // recovered record stream (as produced by checkpoint_to_wal). Restore
  // into a *fresh* engine: existing state is not cleared. Unknown record
  // types are skipped (the stream may interleave migration dirty-log
  // records). Returns false and sets `error` on a malformed payload; the
  // caller should then discard the engine. On success the result is
  // verify_coherence(strict=false)-clean by construction — the recovery
  // tests assert exactly that against a torn-tail stream.
  bool restore_from_records(const std::vector<wal::Record>& records, std::string* error);

  // ---- Coherence oracle ----

  // Turns on post-mutation structural checking. `strict_gpt` additionally
  // arms the guest-PT agreement check for explicit quiescent-point calls
  // (disable for backends whose PT sync is legitimately deferred).
  void enable_coherence_oracle(bool strict_gpt = true) {
    oracle_enabled_ = true;
    oracle_strict_ = strict_gpt;
  }
  bool coherence_oracle_enabled() const { return oracle_enabled_; }
  bool coherence_oracle_strict() const { return oracle_strict_; }

  // Verifies the invariants; returns a (possibly empty) list of violations.
  // `strict` adds the guest-PT agreement check — only meaningful when no
  // mutation is in flight and the backend has no deferred sync pending.
  std::vector<std::string> check_coherence(bool strict) const;

  // check_coherence + throw SptCoherenceError if anything is wrong.
  void verify_coherence(bool strict) const;

  // ---- Test hooks (mutation testing of the oracle; never used by the
  // protocol paths) ----

  // Redirects an existing shadow leaf to a bogus frame (breaks the
  // leaf-vs-gpa_map agreement). Returns false if no leaf exists.
  bool debug_corrupt_spt_leaf(std::uint64_t pid, bool kernel_ring, std::uint64_t gva);

  // Plants one deterministic coherence violation: corrupts the first tracked
  // shadow leaf in (pid, ring, gva) order (the backpointer index is an
  // ordered map, so the choice is interleaving-independent), or — when no
  // leaf survived, e.g. at a post-teardown quiescent point — inserts a
  // dangling backpointer that the structural oracle reports as
  // "backpointer for destroyed process". Used by the sweep determinism
  // tests to make the oracle fail on demand. Always returns true.
  bool debug_plant_violation();

  // Erases the rmap entry for an existing leaf but keeps the leaf (creates a
  // missing-rmap-entry violation). Returns false if no entry exists.
  bool debug_drop_rmap_entry(std::uint64_t pid, bool kernel_ring, std::uint64_t gva);

  // Duplicates the rmap entry for an existing leaf (creates a stale/dup
  // violation). Returns false if no entry exists.
  bool debug_duplicate_rmap_entry(std::uint64_t pid, bool kernel_ring, std::uint64_t gva);

  // Installs a guest-kernel-half translation into the *user* shadow table
  // (violates the dual-SPT KPTI invariant). No-op unless dual_spt.
  bool debug_install_kernel_leaf_in_user_spt(std::uint64_t pid, std::uint64_t gva);

 private:
  struct ProcessShadow {
    std::unique_ptr<PageTable> user_spt;
    std::unique_ptr<PageTable> kernel_spt;
    const PageTable* guest_pt = nullptr;  // strict-oracle reference, not owned
  };

  struct RmapEntry {
    std::uint64_t pid;
    bool kernel_ring;
    std::uint64_t gva;

    bool operator==(const RmapEntry&) const = default;
  };

  struct RmapNode {
    RmapEntry entry;
    RmapNode* next = nullptr;
  };

  // Insertion-order-preserving chain of slab-allocated rmap entries — the
  // KVM pte_list idiom. Entries churn on every fill/zap cycle; the shared
  // per-engine slab recycles nodes through its free list instead of paying
  // vector reallocation per gfn. Iteration yields entries oldest-first, the
  // exact order the previous std::vector gave, which the coherence oracle
  // and reclaim sweep depend on for determinism. Mutators take the owning
  // slab explicitly: the chain is a dumb intrusive list, the engine owns the
  // storage. Chains destroyed non-empty (engine teardown) leak nothing —
  // the slab frees all node memory wholesale.
  class RmapChain {
   public:
    RmapChain() = default;
    RmapChain(const RmapChain&) = delete;
    RmapChain& operator=(const RmapChain&) = delete;
    RmapChain(RmapChain&& other) noexcept : head_(other.head_), tail_(other.tail_) {
      other.head_ = nullptr;
      other.tail_ = nullptr;
    }
    RmapChain& operator=(RmapChain&& other) noexcept {
      std::swap(head_, other.head_);
      std::swap(tail_, other.tail_);
      return *this;
    }

    struct Iterator {
      const RmapNode* node;
      const RmapEntry& operator*() const { return node->entry; }
      Iterator& operator++() {
        node = node->next;
        return *this;
      }
      bool operator==(const Iterator&) const = default;
    };
    Iterator begin() const { return Iterator{head_}; }
    Iterator end() const { return Iterator{nullptr}; }
    bool empty() const { return head_ == nullptr; }

    void push_back(const RmapEntry& entry, SlabAllocator<RmapNode>& slab) {
      RmapNode* node = slab.acquire(RmapNode{entry, nullptr});
      if (tail_ == nullptr) {
        head_ = node;
      } else {
        tail_->next = node;
      }
      tail_ = node;
    }

    // Unlinks and recycles every entry matching `match`; returns the count.
    std::size_t erase(const RmapEntry& match, SlabAllocator<RmapNode>& slab) {
      return erase_if([&match](const RmapEntry& entry) { return entry == match; }, slab);
    }

    template <typename Pred>
    std::size_t erase_if(Pred pred, SlabAllocator<RmapNode>& slab) {
      std::size_t erased = 0;
      RmapNode** link = &head_;
      RmapNode* prev = nullptr;
      while (*link != nullptr) {
        RmapNode* node = *link;
        if (pred(node->entry)) {
          *link = node->next;
          slab.release(node);
          ++erased;
        } else {
          prev = node;
          link = &node->next;
        }
      }
      tail_ = prev;
      return erased;
    }

    std::size_t count(const RmapEntry& match) const {
      std::size_t matches = 0;
      for (const RmapNode* node = head_; node != nullptr; node = node->next) {
        matches += node->entry == match ? 1 : 0;
      }
      return matches;
    }

    void clear(SlabAllocator<RmapNode>& slab) {
      while (head_ != nullptr) {
        RmapNode* node = head_;
        head_ = node->next;
        slab.release(node);
      }
      tail_ = nullptr;
    }

   private:
    RmapNode* head_ = nullptr;
    RmapNode* tail_ = nullptr;
  };

  // (pid, kernel_ring, gva) — one shadow leaf. std::map for deterministic
  // iteration order in the oracle and in bulk erases.
  using LeafKey = std::tuple<std::uint64_t, bool, std::uint64_t>;

  // RAII marker for a mutation in flight; the oracle only auto-fires when
  // the completing mutator is the sole one (a half-applied concurrent
  // mutation is not a violation).
  struct MutationScope {
    PvmMemoryEngine* engine;
    explicit MutationScope(PvmMemoryEngine* e) : engine(e) { ++engine->inflight_mutations_; }
    MutationScope(const MutationScope&) = delete;
    MutationScope& operator=(const MutationScope&) = delete;
    ~MutationScope() { --engine->inflight_mutations_; }
  };

  ProcessShadow& shadow_for(std::uint64_t pid);

  // Runs the structural check if the oracle is on and the caller is the only
  // mutation in flight. Called at the end of every mutator (throws through
  // the coroutine promise on violation).
  void maybe_check_after_mutation() const;

  // Zaps one (pid, gva) in one ring: unmaps the leaf and erases its rmap
  // entry and backpointer, revalidating after each lock wait.
  Task<void> zap_one_ring(std::uint64_t pid, std::uint64_t gva, bool kernel_ring, Tlb& tlb,
                          std::uint16_t vpid);

  // Erases all backpointers and rmap entries belonging to `pid` (bulk
  // teardown / process destruction; caller holds the structural lock).
  void erase_process_rmap_state(std::uint64_t pid);

  // Feeds the live-shadow-leaves gauge when a time-series collector is
  // attached; every leaf_gfn_ mutation reports its delta through here so the
  // gauge tracks the backpointer map exactly.
  void note_leaves(std::int64_t delta);

  // The synchronous reclaim sweep behind translate_or_allocate_gpa_checked.
  // Runs without suspending, so it is atomic w.r.t. every other task: the
  // only in-flight state it must respect is a fill/zap suspended while
  // *holding* a gfn's rmap lock (its translation is stale the moment we evict
  // that gfn) — in fine-grained mode those gfns are skipped via
  // rmap_lock_idle; in coarse mode the single mmu_lock serializes mutators,
  // so the caller itself is the only one mid-mutation. Returns the first
  // recovered frame (for direct reuse by the requester — immune to injected
  // allocator pressure); extra frames go back to the allocator.
  std::optional<std::uint64_t> reclaim_backing_frame(std::uint64_t requesting_gfn,
                                                     ReclaimStats* stats);

  Simulation* sim_;
  const CostModel* costs_;
  CounterSet* counters_;
  TraceLog* trace_;
  FrameAllocator* l1_frames_;
  std::string name_;
  Options options_;

  std::function<std::size_t()> vcpu_count_;
  SptLockSet locks_;
  PcidMapper pcid_mapper_;
  PageTable gpa_map_;  // GPA_L2 page -> GPA_L1 frame (memslots)
  std::unordered_map<std::uint64_t, ProcessShadow> shadows_;
  std::unordered_map<std::uint64_t, RmapChain> rmap_;
  SlabAllocator<RmapNode> rmap_slab_{64};
  // Backpointers: which gfn each installed shadow leaf translates. Keeps the
  // rmap exact (zaps erase precisely their own entry) and lets fills detect
  // that a concurrent zap invalidated them.
  std::map<LeafKey, std::uint64_t> leaf_gfn_;

  std::function<void()> reclaim_flush_;

  bool oracle_enabled_ = false;
  bool oracle_strict_ = true;
  int inflight_mutations_ = 0;
};

}  // namespace pvm

#endif  // PVM_SRC_CORE_MEMORY_ENGINE_H_
