// PVM's shadow-paging engine for one L2 guest VM (paper §3.3.2).
//
// Maintains, per guest process, a *dual* pair of shadow page tables — one for
// the guest user (v_ring3) and one for the guest kernel (v_ring0) — mapping
// GVA_L2 directly to GPA_L1, simulating KPTI for the guest. A per-VM
// `gpa_map` (KVM memslots analogue) translates GPA_L2 to GPA_L1, allocating
// L1 backing frames on demand. A reverse map (gfn -> SPT entries) supports
// zapping when the guest frees or write-protects pages.
//
// The three PVM optimizations are switchable:
//   - prefault: fill the SPT on the guest's iret path so the retried access
//     does not fault again,
//   - PCID mapping: give each (process, ring) shadow space its own hardware
//     PCID so world switches flush nothing,
//   - fine-grained locks: meta/pt/rmap locks instead of one mmu_lock.

#ifndef PVM_SRC_CORE_MEMORY_ENGINE_H_
#define PVM_SRC_CORE_MEMORY_ENGINE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/arch/cost_model.h"
#include "src/arch/page_table.h"
#include "src/arch/physical_memory.h"
#include "src/arch/tlb.h"
#include "src/core/pcid_mapper.h"
#include "src/core/spt_locks.h"
#include "src/metrics/counters.h"
#include "src/sim/simulation.h"
#include "src/sim/task.h"
#include "src/trace/trace.h"

namespace pvm {

// The semantic effect of a trapped guest page-table store.
enum class GptStoreKind {
  kInstall,       // new leaf installed (demand paging)
  kClear,         // leaf cleared (munmap)
  kWriteProtect,  // leaf write bit dropped (COW arm)
  kMakeWritable,  // leaf write bit raised (COW break)
  kTableAlloc,    // intermediate table page installed
};

class PvmMemoryEngine {
 public:
  struct Options {
    bool prefault = true;
    bool pcid_mapping = true;
    bool fine_grained_locks = true;
    bool dual_spt = true;  // separate user/kernel shadow tables (KPTI-like)
  };

  PvmMemoryEngine(Simulation& sim, const CostModel& costs, CounterSet& counters, TraceLog& trace,
                  FrameAllocator& l1_frames, std::string name, const Options& options);

  const Options& options() const { return options_; }
  SptLockSet& locks() { return locks_; }
  PcidMapper& pcid_mapper() { return pcid_mapper_; }
  PageTable& gpa_map() { return gpa_map_; }

  // ---- Process lifecycle ----
  void create_process(std::uint64_t pid);
  void destroy_process(std::uint64_t pid, Tlb& tlb, std::uint16_t vpid);

  // The active shadow table for (process, ring). With dual_spt disabled the
  // kernel table serves both rings.
  PageTable& spt(std::uint64_t pid, bool kernel_ring);
  const PageTable& spt(std::uint64_t pid, bool kernel_ring) const;

  // ---- Fault-path operations (coroutines charging virtual time) ----

  // Fills the SPT leaf for `gva` from the guest's present GPT leaf
  // `gpt_leaf`: translates GPA_L2 -> GPA_L1 through gpa_map (allocating
  // backing on demand), installs the SPT entry under the configured locks,
  // and records the reverse mapping. `is_prefault` only affects accounting.
  Task<void> fill_spt(std::uint64_t pid, std::uint64_t gva, bool kernel_ring, Pte gpt_leaf,
                      bool is_prefault);

  // Emulates a trapped write to the guest page table and keeps the shadow
  // tables coherent (zap on clear/write-protect). `emulation_work_ns` is the
  // scheme's instruction-emulation cost, charged under the meta/mmu lock as
  // in KVM's kvm_mmu_pte_write. Does not include the world switches — the
  // backend wraps this in the trap protocol.
  Task<void> emulate_gpt_store(std::uint64_t pid, std::uint64_t gva, GptStoreKind kind,
                               Tlb& tlb, std::uint16_t vpid,
                               std::uint64_t emulation_work_ns);

  // Lets the engine know how many vCPUs share the guest's address spaces:
  // remote TLB shootdowns on shadow zaps scale with it (the quadratic cost
  // traditional shadow paging pays under concurrency).
  void set_vcpu_count_provider(std::function<std::size_t()> provider) {
    vcpu_count_ = std::move(provider);
  }

  // Drops any shadow translations for (pid, gva) in both rings and flushes
  // matching TLB entries.
  Task<void> zap_gva(std::uint64_t pid, std::uint64_t gva, Tlb& tlb, std::uint16_t vpid);

  // Bulk teardown: drops both of a process's shadow tables wholesale and
  // flushes its TLB footprint. Backs the PVM bulk-teardown hypercall; cost
  // scales with the number of populated shadow leaves.
  Task<void> bulk_zap(std::uint64_t pid, Tlb& tlb, std::uint16_t vpid);

  // Activates (process, ring) on a vCPU: returns the hardware PCID to run
  // with. Without PCID mapping, performs the traditional full-VPID flush.
  Task<std::uint16_t> activate(std::uint64_t pid, bool kernel_ring, Tlb& tlb,
                               std::uint16_t vpid);

  // Translates a guest-physical page to its L1 backing frame, allocating on
  // demand (cold path charged). Non-coroutine variant used inside locks.
  std::uint64_t translate_or_allocate_gpa(std::uint64_t gpa_frame, bool* allocated);

  std::uint64_t spt_leaves(std::uint64_t pid, bool kernel_ring) const;

  // Total 4 KiB table pages held by all shadow tables plus the gpa_map —
  // the memory cost of the dual-SPT design the paper's §5 discusses.
  std::uint64_t shadow_table_frames() const;

 private:
  struct ProcessShadow {
    std::unique_ptr<PageTable> user_spt;
    std::unique_ptr<PageTable> kernel_spt;
  };

  struct RmapEntry {
    std::uint64_t pid;
    bool kernel_ring;
    std::uint64_t gva;
  };

  ProcessShadow& shadow_for(std::uint64_t pid);

  Simulation* sim_;
  const CostModel* costs_;
  CounterSet* counters_;
  TraceLog* trace_;
  FrameAllocator* l1_frames_;
  std::string name_;
  Options options_;

  std::function<std::size_t()> vcpu_count_;
  SptLockSet locks_;
  PcidMapper pcid_mapper_;
  PageTable gpa_map_;  // GPA_L2 page -> GPA_L1 frame (memslots)
  std::unordered_map<std::uint64_t, ProcessShadow> shadows_;
  std::unordered_map<std::uint64_t, std::vector<RmapEntry>> rmap_;
};

}  // namespace pvm

#endif  // PVM_SRC_CORE_MEMORY_ENGINE_H_
