#include "src/core/instruction_emulator.h"

namespace pvm {

std::string_view InstructionEmulator::name(GuestInstruction instruction) {
  switch (instruction) {
    case GuestInstruction::kCli:
      return "cli";
    case GuestInstruction::kSti:
      return "sti";
    case GuestInstruction::kHlt:
      return "hlt";
    case GuestInstruction::kInvlpg:
      return "invlpg";
    case GuestInstruction::kInvpcid:
      return "invpcid";
    case GuestInstruction::kLgdt:
      return "lgdt";
    case GuestInstruction::kLidt:
      return "lidt";
    case GuestInstruction::kLtr:
      return "ltr";
    case GuestInstruction::kMovToCr0:
      return "mov %cr0";
    case GuestInstruction::kMovToCr3:
      return "mov %cr3";
    case GuestInstruction::kMovToCr4:
      return "mov %cr4";
    case GuestInstruction::kMovFromCr3:
      return "mov from %cr3";
    case GuestInstruction::kRdmsr:
      return "rdmsr";
    case GuestInstruction::kWrmsr:
      return "wrmsr";
    case GuestInstruction::kIn:
      return "in";
    case GuestInstruction::kOut:
      return "out";
    case GuestInstruction::kIret:
      return "iret";
    case GuestInstruction::kSysret:
      return "sysret";
    case GuestInstruction::kSwapgs:
      return "swapgs";
    case GuestInstruction::kWbinvd:
      return "wbinvd";
    case GuestInstruction::kSgdt:
      return "sgdt";
    case GuestInstruction::kSidt:
      return "sidt";
    case GuestInstruction::kSmsw:
      return "smsw";
    case GuestInstruction::kStr:
      return "str";
    case GuestInstruction::kPushf:
      return "pushf";
    case GuestInstruction::kPopf:
      return "popf";
  }
  return "?";
}

DecodedInstruction InstructionEmulator::decode(GuestInstruction instruction) const {
  DecodedInstruction decoded;
  decoded.instruction = instruction;

  switch (instruction) {
    // The hot paravirtual hypercalls (§3.3.1: iret, sysret, MSR access,
    // interrupt-flag ops, CR3 loads, TLB ops, HLT are all in the 22-entry
    // table).
    case GuestInstruction::kIret:
    case GuestInstruction::kSysret:
    case GuestInstruction::kHlt:
    case GuestInstruction::kMovToCr3:
    case GuestInstruction::kInvlpg:
    case GuestInstruction::kInvpcid:
    case GuestInstruction::kWrmsr:
    case GuestInstruction::kRdmsr:
      decoded.route = EmulationRoute::kFastHypercall;
      decoded.privileged = true;
      decoded.emulate_ns = costs_->pvm_simple_handler;
      break;

    // Privileged, rare: trap (#GP at CPL 3) and fully emulate.
    case GuestInstruction::kCli:
    case GuestInstruction::kSti:
    case GuestInstruction::kLgdt:
    case GuestInstruction::kLidt:
    case GuestInstruction::kLtr:
    case GuestInstruction::kMovToCr0:
    case GuestInstruction::kMovToCr4:
    case GuestInstruction::kMovFromCr3:
    case GuestInstruction::kIn:
    case GuestInstruction::kOut:
    case GuestInstruction::kSwapgs:
    case GuestInstruction::kWbinvd:
      decoded.route = EmulationRoute::kTrapAndEmulate;
      decoded.privileged = true;
      decoded.emulate_ns = costs_->pvm_instruction_emulate;
      break;

    // Sensitive but unprivileged: these execute at CPL 3 *without faulting*
    // and would observe or leak host state (SGDT reveals the real GDT, PUSHF
    // the real IF). The PV guest kernel must have replaced them (pv_cpu_ops
    // / pv_irq_ops); they never reach the hypervisor at run time.
    case GuestInstruction::kSgdt:
    case GuestInstruction::kSidt:
    case GuestInstruction::kSmsw:
    case GuestInstruction::kStr:
    case GuestInstruction::kPushf:
    case GuestInstruction::kPopf:
      decoded.route = EmulationRoute::kParavirtualized;
      decoded.privileged = false;
      decoded.emulate_ns = 5;  // the PV replacement is a shared-memory access
      break;
  }
  return decoded;
}

std::uint64_t InstructionEmulator::emulate(const DecodedInstruction& decoded, VcpuState& vcpu,
                                           std::uint64_t operand) const {
  switch (decoded.instruction) {
    case GuestInstruction::kCli:
      vcpu.rflags_if = false;
      break;
    case GuestInstruction::kSti:
    case GuestInstruction::kPopf:
      vcpu.rflags_if = true;
      break;
    case GuestInstruction::kMovToCr3:
      vcpu.cr3 = operand & ~kPageMask;
      vcpu.pcid = static_cast<std::uint16_t>(operand & 0xfff);
      break;
    case GuestInstruction::kWrmsr:
      vcpu.write_msr(static_cast<MsrIndex>(operand >> 32),
                     operand & 0xffffffffull);
      break;
    case GuestInstruction::kIret:
    case GuestInstruction::kSysret:
      vcpu.virt_ring = VirtRing::kVRing3;
      break;
    default:
      break;  // no architectural register effect in this model
  }
  return decoded.emulate_ns;
}

}  // namespace pvm
