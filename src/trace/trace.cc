#include "src/trace/trace.h"

#include <sstream>

namespace pvm {

std::string_view trace_actor_name(TraceActor actor) {
  switch (actor) {
    case TraceActor::kL2User:
      return "L2-user";
    case TraceActor::kL2Kernel:
      return "L2-kernel";
    case TraceActor::kSwitcher:
      return "switcher";
    case TraceActor::kL1Hypervisor:
      return "L1-hv";
    case TraceActor::kL0Hypervisor:
      return "L0-hv";
    case TraceActor::kHardware:
      return "hw";
  }
  return "?";
}

std::vector<std::string> TraceLog::messages_for(TraceActor actor) const {
  std::vector<std::string> result;
  for (const auto& record : records_) {
    if (record.actor == actor) {
      result.push_back(record.message);
    }
  }
  return result;
}

std::vector<std::string> TraceLog::messages() const {
  std::vector<std::string> result;
  result.reserve(records_.size());
  for (const auto& record : records_) {
    result.push_back(record.message);
  }
  return result;
}

bool TraceLog::contains_sequence(const std::vector<std::string>& needle) const {
  std::size_t matched = 0;
  for (const auto& record : records_) {
    if (matched < needle.size() && record.message == needle[matched]) {
      ++matched;
    }
  }
  return matched == needle.size();
}

std::string TraceLog::render() const {
  std::ostringstream out;
  std::size_t step = 1;
  for (const auto& record : records_) {
    out << step++ << ". [" << record.time_ns << " ns] " << trace_actor_name(record.actor) << ": "
        << record.message << '\n';
  }
  if (dropped_ > 0) {
    out << "(" << dropped_ << " earlier records dropped)\n";
  }
  return out.str();
}

}  // namespace pvm
