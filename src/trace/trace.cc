#include "src/trace/trace.h"

#include <sstream>

namespace pvm {

std::string_view trace_actor_name(TraceActor actor) {
  switch (actor) {
    case TraceActor::kL2User:
      return "L2-user";
    case TraceActor::kL2Kernel:
      return "L2-kernel";
    case TraceActor::kSwitcher:
      return "switcher";
    case TraceActor::kL1Hypervisor:
      return "L1-hv";
    case TraceActor::kL0Hypervisor:
      return "L0-hv";
    case TraceActor::kHardware:
      return "hw";
  }
  return "?";
}

std::string TraceRecord::text() const {
  const auto with = [this](const char* prefix, const char* suffix) {
    std::string result(prefix);
    result += fragment;
    result += suffix;
    return result;
  };
  switch (kind) {
    case TraceEventKind::kFreeform:
      return message;
    case TraceEventKind::kVmExit:
      return with("vm exit (", ")");
    case TraceEventKind::kVmEntry:
      return with("vm entry (", ")");
    case TraceEventKind::kDirectSwitch:
      return with("direct switch -> ", "");
    case TraceEventKind::kVmExitFrom:
      return with("vm exit from ", "");
    case TraceEventKind::kVmEntryTo:
      return with("vm entry to ", "");
    case TraceEventKind::kEptViolation:
      return with("EPT violation in ", " @gpa=") + std::to_string(value);
    case TraceEventKind::kInjectInterrupt:
      return with("inject interrupt into ", "");
    case TraceEventKind::kNestedForward:
      return "L2 exit -> L0 (forward to L1)";
    case TraceEventKind::kResumeL1:
      return with("resume L1 (", ")");
    case TraceEventKind::kL1VmresumeTrap:
      return with("L1 vmresume trap (", ")");
    case TraceEventKind::kVmResumeL2:
      return "vm_resume L2 (real entry)";
    case TraceEventKind::kEmulateEpt12Store:
      return with("emulate write-protected EPT12 store (", ")");
    case TraceEventKind::kSptFill:
      return with("", " SPT12 gva=") + std::to_string(value);
    case TraceEventKind::kEpt02Violation:
      return "EPT02 violation gpa=" + std::to_string(value);
  }
  return message;
}

std::vector<std::string> TraceLog::messages_for(TraceActor actor) const {
  std::vector<std::string> result;
  for (const auto& record : records_) {
    if (record.actor == actor) {
      result.push_back(record.text());
    }
  }
  return result;
}

std::vector<std::string> TraceLog::messages() const {
  std::vector<std::string> result;
  result.reserve(records_.size());
  for (const auto& record : records_) {
    result.push_back(record.text());
  }
  return result;
}

bool TraceLog::contains_sequence(const std::vector<std::string>& needle) const {
  std::size_t matched = 0;
  for (const auto& record : records_) {
    if (matched < needle.size() && record.text() == needle[matched]) {
      ++matched;
    }
  }
  return matched == needle.size();
}

std::string TraceLog::render() const {
  std::ostringstream out;
  std::size_t step = 1;
  for (const auto& record : records_) {
    out << step++ << ". [" << record.time_ns << " ns] " << trace_actor_name(record.actor) << ": "
        << record.text() << '\n';
  }
  if (dropped_ > 0) {
    out << "(" << dropped_ << " earlier records dropped)\n";
  }
  return out.str();
}

}  // namespace pvm
