// Event tracing for world-switch protocols.
//
// When enabled, every protocol step (VM exit, fault injection, VMCS sync,
// switcher transition, ...) appends a record tagged with the acting layer.
// The renderer prints the numbered step sequences of the paper's Figure 3
// (SPT-on-EPT / EPT-on-EPT) and Figure 9 (PVM-on-EPT), which the integration
// tests compare against the published protocols.

#ifndef PVM_SRC_TRACE_TRACE_H_
#define PVM_SRC_TRACE_TRACE_H_

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <vector>

namespace pvm {

enum class TraceActor {
  kL2User,
  kL2Kernel,
  kSwitcher,
  kL1Hypervisor,
  kL0Hypervisor,
  kHardware,
};

std::string_view trace_actor_name(TraceActor actor);

// Typed event kinds for the hot protocol paths. A typed record stores only
// the kind plus a string fragment and a numeric payload; the message string
// is rendered lazily by TraceRecord::text(), so emitting costs no allocation
// (free-form strings previously had to be concatenated before the enabled
// check at every call site). kFreeform keeps the arbitrary-string escape
// hatch for cold paths and tests.
enum class TraceEventKind : std::uint8_t {
  kFreeform,            // message                      (verbatim)
  kVmExit,              // "vm exit (<a>)"              a = switch reason
  kVmEntry,             // "vm entry (<a>)"             a = target virt ring
  kDirectSwitch,        // "direct switch -> <a>"
  kVmExitFrom,          // "vm exit from <a>"           a = VM name
  kVmEntryTo,           // "vm entry to <a>"            a = VM name
  kEptViolation,        // "EPT violation in <a> @gpa=<value>"
  kInjectInterrupt,     // "inject interrupt into <a>"
  kNestedForward,       // "L2 exit -> L0 (forward to L1)"
  kResumeL1,            // "resume L1 (<a>)"
  kL1VmresumeTrap,      // "L1 vmresume trap (<a>)"
  kVmResumeL2,          // "vm_resume L2 (real entry)"
  kEmulateEpt12Store,   // "emulate write-protected EPT12 store (<a>)"
  kSptFill,             // "<a> SPT12 gva=<value>"      a = "fill" | "prefault"
  kEpt02Violation,      // "EPT02 violation gpa=<value>"
};

struct TraceRecord {
  std::uint64_t time_ns;
  TraceActor actor;
  TraceEventKind kind = TraceEventKind::kFreeform;
  // Fragment referenced by typed kinds. Must be a string literal or owned by
  // an object that outlives every read of this log (VM/engine names qualify:
  // they live as long as the platform that owns the log).
  std::string_view fragment{};
  std::uint64_t value = 0;
  std::string message;  // kFreeform payload only

  // The rendered message ("vm exit (hypercall)", ...).
  std::string text() const;
};

class TraceLog {
 public:
  explicit TraceLog(std::size_t max_records = 65536) : max_records_(max_records) {}

  void set_enabled(bool enabled) { enabled_ = enabled; }
  bool enabled() const { return enabled_; }

  void emit(std::uint64_t time_ns, TraceActor actor, std::string message) {
    if (!enabled_) {
      return;
    }
    push(TraceRecord{time_ns, actor, TraceEventKind::kFreeform, {}, 0, std::move(message)});
  }

  // Typed emit: no allocation, message rendered lazily on read.
  void emit(std::uint64_t time_ns, TraceActor actor, TraceEventKind kind,
            std::string_view fragment = {}, std::uint64_t value = 0) {
    if (!enabled_) {
      return;
    }
    push(TraceRecord{time_ns, actor, kind, fragment, value, {}});
  }

  void clear() {
    records_.clear();
    dropped_ = 0;
  }

  std::size_t size() const { return records_.size(); }
  std::uint64_t dropped() const { return dropped_; }
  const std::deque<TraceRecord>& records() const { return records_; }

  // All messages from a given actor, in order.
  std::vector<std::string> messages_for(TraceActor actor) const;

  // All messages in order (for protocol-sequence assertions).
  std::vector<std::string> messages() const;

  // True if the message sequence contains `needle` as a subsequence.
  bool contains_sequence(const std::vector<std::string>& needle) const;

  // Renders a numbered, indented step listing.
  std::string render() const;

 private:
  void push(TraceRecord&& record) {
    if (records_.size() >= max_records_) {
      records_.pop_front();
      ++dropped_;
    }
    records_.push_back(std::move(record));
  }

  bool enabled_ = false;
  std::size_t max_records_;
  std::uint64_t dropped_ = 0;
  std::deque<TraceRecord> records_;
};

}  // namespace pvm

#endif  // PVM_SRC_TRACE_TRACE_H_
