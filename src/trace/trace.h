// Event tracing for world-switch protocols.
//
// When enabled, every protocol step (VM exit, fault injection, VMCS sync,
// switcher transition, ...) appends a record tagged with the acting layer.
// The renderer prints the numbered step sequences of the paper's Figure 3
// (SPT-on-EPT / EPT-on-EPT) and Figure 9 (PVM-on-EPT), which the integration
// tests compare against the published protocols.

#ifndef PVM_SRC_TRACE_TRACE_H_
#define PVM_SRC_TRACE_TRACE_H_

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <vector>

namespace pvm {

enum class TraceActor {
  kL2User,
  kL2Kernel,
  kSwitcher,
  kL1Hypervisor,
  kL0Hypervisor,
  kHardware,
};

std::string_view trace_actor_name(TraceActor actor);

struct TraceRecord {
  std::uint64_t time_ns;
  TraceActor actor;
  std::string message;
};

class TraceLog {
 public:
  explicit TraceLog(std::size_t max_records = 65536) : max_records_(max_records) {}

  void set_enabled(bool enabled) { enabled_ = enabled; }
  bool enabled() const { return enabled_; }

  void emit(std::uint64_t time_ns, TraceActor actor, std::string message) {
    if (!enabled_) {
      return;
    }
    if (records_.size() >= max_records_) {
      records_.pop_front();
      ++dropped_;
    }
    records_.push_back(TraceRecord{time_ns, actor, std::move(message)});
  }

  void clear() {
    records_.clear();
    dropped_ = 0;
  }

  std::size_t size() const { return records_.size(); }
  std::uint64_t dropped() const { return dropped_; }
  const std::deque<TraceRecord>& records() const { return records_; }

  // All messages from a given actor, in order.
  std::vector<std::string> messages_for(TraceActor actor) const;

  // All messages in order (for protocol-sequence assertions).
  std::vector<std::string> messages() const;

  // True if the message sequence contains `needle` as a subsequence.
  bool contains_sequence(const std::vector<std::string>& needle) const;

  // Renders a numbered, indented step listing.
  std::string render() const;

 private:
  bool enabled_ = false;
  std::size_t max_records_;
  std::uint64_t dropped_ = 0;
  std::deque<TraceRecord> records_;
};

}  // namespace pvm

#endif  // PVM_SRC_TRACE_TRACE_H_
