#include "src/backends/pvm_direct_memory_backend.h"

#include "src/obs/flight.h"
#include "src/obs/span.h"

namespace pvm {

PvmDirectMemoryBackend::PvmDirectMemoryBackend(PvmHypervisor& hypervisor, HostHypervisor* l0,
                                               HostHypervisor::Vm* l1_vm, std::uint16_t vpid,
                                               const std::string& container_name)
    : MemoryBackendBase(hypervisor.sim(), hypervisor.costs(), hypervisor.counters(),
                        hypervisor.trace(), "pvm-direct:" + container_name, vpid),
      hypervisor_(&hypervisor),
      l0_(l0),
      l1_vm_(l1_vm) {}

Task<void> PvmDirectMemoryBackend::validate_store(Vcpu& vcpu, int stores) {
  // mmu_update: the guest hands PVM a batch of page-table writes; PVM checks
  // frame ownership and type (a table frame must never be mapped writable)
  // and applies them.
  obs::SpanScope op(sim_->spans(), obs::Phase::kOpGptStore,
                    static_cast<std::uint64_t>(stores));
  Switcher& switcher = hypervisor_->switcher();
  const VirtRing resume_ring = vcpu.state.virt_ring;
  counters_->add(Counter::kHypercall);
  co_await switcher.to_hypervisor(vcpu.switcher_state, vcpu.state, SwitchReason::kHypercall);
  co_await sim_->delay(costs_->pvm_exit_dispatch +
                       static_cast<std::uint64_t>(stores) *
                           (costs_->pvm_gpt_store_emulate / 2 + costs_->spt_sync_check));
  counters_->add(Counter::kGptWriteProtectTrap, static_cast<std::uint64_t>(stores));
  co_await switcher.enter_guest(vcpu.switcher_state, vcpu.state, resume_ring);
}

Task<void> PvmDirectMemoryBackend::access(Vcpu& vcpu, GuestProcess& proc, GuestKernel& kernel,
                                          std::uint64_t gva, AccessType access,
                                          bool user_mode) {
  Switcher& switcher = hypervisor_->switcher();
  const std::uint16_t pcid = guest_pcid(proc, user_mode, /*kpti=*/true);
  const VirtRing resume_ring = user_mode ? VirtRing::kVRing3 : VirtRing::kVRing0;

  obs::SpanScope op;
  for (int attempt = 0; attempt < 24; ++attempt) {
    if (proc.oom_killed()) {
      co_return;  // OOM-killed mid-access; the faulting task is abandoned
    }
    if (tlb_try(vcpu, pcid, gva, access, user_mode)) {
      co_await sim_->delay(costs_->tlb_hit);
      co_await dirty_note(vcpu, proc, gva, access);
      co_return;
    }

    // The guest table maps GVA straight to L1 frames; no shadow dimension.
    const TwoDimWalk walk =
        l1_vm_ != nullptr
            ? walk_two_dimensional(proc.gpt(), l1_vm_->ept(), gva, access, user_mode)
            : walk_one_dimensional(proc.gpt(), gva, access, user_mode);
    co_await sim_->delay(static_cast<std::uint64_t>(walk.total_loads) * costs_->walk_load);

    if (walk.outcome == TwoDimWalk::Outcome::kOk) {
      vcpu.tlb.insert(vpid_, pcid, page_number(gva),
                      Pte::make(walk.host_frame, walk.guest.pte.flags()));
      co_await sim_->delay(costs_->tlb_fill);
      co_await dirty_note(vcpu, proc, gva, access);
      co_return;
    }
    if (attempt == 0) {
      op = obs::SpanScope(sim_->spans(), obs::Phase::kOpPageFault, gva);
      if (flight::FlightRecorder* flight = sim_->flight()) {
        flight->record(flight::EventKind::kGuestFault, gva,
                       static_cast<std::uint64_t>(proc.pid()));
      }
    }
    if (walk.outcome == TwoDimWalk::Outcome::kEptViolation) {
      co_await l0_->ensure_backed(*l1_vm_, walk.violating_gpa);
      continue;
    }

    // Guest fault: delivered through the switcher into the guest kernel
    // (the de-privileged guest cannot take #PF natively), then straight
    // back — there is no shadow table to fill, so no prefault and no second
    // fault.
    co_await switcher.to_hypervisor(vcpu.switcher_state, vcpu.state, SwitchReason::kPageFault);
    co_await sim_->delay(costs_->pvm_exit_dispatch + costs_->pvm_exception_inject);
    co_await switcher.enter_guest(vcpu.switcher_state, vcpu.state, VirtRing::kVRing0);

    const PageFaultInfo fault{gva, access, user_mode,
                              walk.outcome == TwoDimWalk::Outcome::kGuestProtection};
    co_await kernel.handle_page_fault(vcpu, proc, fault);

    counters_->add(Counter::kHypercall);  // iret hypercall
    co_await switcher.to_hypervisor(vcpu.switcher_state, vcpu.state, SwitchReason::kHypercall);
    co_await sim_->delay(costs_->pvm_exit_dispatch + costs_->pvm_simple_handler);
    co_await switcher.enter_guest(vcpu.switcher_state, vcpu.state, resume_ring);
  }
  fault_loop_error(gva);
}

Task<void> PvmDirectMemoryBackend::gpt_map(Vcpu& vcpu, GuestProcess& proc, std::uint64_t gva,
                                           std::uint64_t gpa_frame, PteFlags flags) {
  const MapResult result = proc.gpt().map(gva, gpa_frame, flags);
  if (result.replaced) {
    tlb_drop_page(vcpu, proc, gva);
  }
  if (!validated(proc)) {
    co_await sim_->delay(static_cast<std::uint64_t>(result.entries_written) *
                         costs_->guest_pte_store);
    co_return;
  }
  // One validation hypercall covers the whole chain of stores (Xen batches
  // mmu_update entries the same way).
  co_await validate_store(vcpu, result.entries_written);
}

Task<void> PvmDirectMemoryBackend::gpt_unmap(Vcpu& vcpu, GuestProcess& proc, std::uint64_t gva) {
  proc.gpt().unmap(gva);
  tlb_drop_page(vcpu, proc, gva);
  if (!validated(proc)) {
    co_await sim_->delay(costs_->guest_pte_store);
    co_return;
  }
  co_await validate_store(vcpu, 1);
}

Task<void> PvmDirectMemoryBackend::gpt_protect(Vcpu& vcpu, GuestProcess& proc, std::uint64_t gva,
                                               bool writable, bool mark_cow) {
  proc.gpt().update_pte(gva, [&](Pte& pte) {
    pte.set_writable(writable);
    pte.set_cow(mark_cow);
  });
  tlb_drop_page(vcpu, proc, gva);
  if (!validated(proc)) {
    co_await sim_->delay(costs_->guest_pte_store);
    co_return;
  }
  co_await validate_store(vcpu, 1);
}

Task<void> PvmDirectMemoryBackend::activate_process(Vcpu& vcpu, GuestProcess& proc,
                                                    bool kernel_ring) {
  validated_.insert(proc.pid());
  // CR3 load is a hypercall: PVM validates (and pins) the new root.
  co_await hypervisor_->handle_privileged_op(vcpu.switcher_state, vcpu.state,
                                             PrivOp::kWriteCr3);
  vcpu.state.cr3 = proc.gpt().root_frame();
  vcpu.state.pcid = guest_pcid(proc, !kernel_ring, /*kpti=*/true);
}

}  // namespace pvm
