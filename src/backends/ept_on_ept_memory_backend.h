// kvm-ept (NST): hardware-assisted nested memory virtualization (EPT-on-EPT,
// paper §2.2 Fig. 3b).
//
// The L2 guest updates GPT2 freely, but every EPT02 miss runs the 13-step
// protocol: exit to L0, forward to L1, L1 repairs EPT12 (write-protected, so
// each store is emulated by L0), emulated VMRESUME, a second EPT02 violation,
// and finally L0 compresses EPT01+EPT12 into EPT02 — under the *L1 VM's* L0
// mmu_lock, which every container on the instance shares. That shared lock is
// the scalability collapse of Figs. 4/10/11.

#ifndef PVM_SRC_BACKENDS_EPT_ON_EPT_MEMORY_BACKEND_H_
#define PVM_SRC_BACKENDS_EPT_ON_EPT_MEMORY_BACKEND_H_

#include "src/backends/memory_common.h"
#include "src/hv/host_hypervisor.h"
#include "src/sim/resource.h"

namespace pvm {

class EptOnEptMemoryBackend : public MemoryBackendBase {
 public:
  EptOnEptMemoryBackend(HostHypervisor& l0, HostHypervisor::Vm& l1_vm, std::uint16_t l2_vpid,
                        const std::string& container_name, bool kpti)
      : MemoryBackendBase(l0.sim(), l0.costs(), l0.counters(), l0.trace(),
                          "ept-on-ept:" + container_name, l2_vpid),
        l0_(&l0),
        l1_vm_(&l1_vm),
        kpti_(kpti),
        ept12_(container_name + ".ept12", nullptr),
        ept02_(container_name + ".ept02", nullptr),
        l1_mmu_lock_(l0.sim(), container_name + ".l1_mmu_lock") {}

  std::string_view name() const override { return "ept-on-ept"; }

  Task<void> access(Vcpu& vcpu, GuestProcess& proc, GuestKernel& kernel, std::uint64_t gva,
                    AccessType access, bool user_mode) override;
  Task<void> gpt_map(Vcpu& vcpu, GuestProcess& proc, std::uint64_t gva, std::uint64_t gpa_frame,
                     PteFlags flags) override;
  Task<void> gpt_unmap(Vcpu& vcpu, GuestProcess& proc, std::uint64_t gva) override;
  Task<void> gpt_protect(Vcpu& vcpu, GuestProcess& proc, std::uint64_t gva, bool writable,
                         bool mark_cow) override;
  Task<void> activate_process(Vcpu& vcpu, GuestProcess& proc, bool kernel_ring) override;

  PageTable& ept12() { return ept12_; }
  PageTable& ept02() { return ept02_; }

 private:
  // The full ➊..⓭ flow for one missing GPA_L2. Returns false when the L1
  // KVM could not allocate backing for the page (instance-level exhaustion;
  // hardware-assisted nesting has no reclaim hook at this layer, so the
  // caller must OOM-kill the faulting process).
  Task<bool> handle_ept02_violation(Vcpu& vcpu, std::uint64_t gpa);

  HostHypervisor* l0_;
  HostHypervisor::Vm* l1_vm_;
  bool kpti_;
  PageTable ept12_;  // GPA_L2 -> GPA_L1, owned by the L1 KVM
  PageTable ept02_;  // GPA_L2 -> HPA, owned by L0 (the compressed table)
  Resource l1_mmu_lock_;  // the L1 KVM's per-L2-VM mmu_lock
};

}  // namespace pvm

#endif  // PVM_SRC_BACKENDS_EPT_ON_EPT_MEMORY_BACKEND_H_
