#include "src/backends/ept_on_ept_memory_backend.h"

#include "src/obs/flight.h"
#include "src/obs/span.h"

namespace pvm {

Task<void> EptOnEptMemoryBackend::access(Vcpu& vcpu, GuestProcess& proc, GuestKernel& kernel,
                                         std::uint64_t gva, AccessType access, bool user_mode) {
  const std::uint16_t pcid = guest_pcid(proc, user_mode, kpti_);
  for (int attempt = 0; attempt < 24; ++attempt) {
    if (proc.oom_killed()) {
      co_return;  // OOM-killed mid-access; the faulting task is abandoned
    }
    if (tlb_try(vcpu, pcid, gva, access, user_mode)) {
      co_await sim_->delay(costs_->tlb_hit);
      co_await dirty_note(vcpu, proc, gva, access);
      co_return;
    }

    const TwoDimWalk walk = walk_two_dimensional(proc.gpt(), ept02_, gva, access, user_mode);
    co_await sim_->delay(static_cast<std::uint64_t>(walk.total_loads) * costs_->walk_load);

    if (walk.outcome != TwoDimWalk::Outcome::kOk && attempt == 0) {
      if (flight::FlightRecorder* flight = sim_->flight()) {
        flight->record(flight::EventKind::kGuestFault, gva,
                       static_cast<std::uint64_t>(proc.pid()));
      }
    }
    switch (walk.outcome) {
      case TwoDimWalk::Outcome::kOk:
        vcpu.tlb.insert(vpid_, pcid, page_number(gva),
                        Pte::make(walk.host_frame, walk.guest.pte.flags()));
        co_await sim_->delay(costs_->tlb_fill);
        co_await dirty_note(vcpu, proc, gva, access);
        co_return;
      case TwoDimWalk::Outcome::kGuestNotPresent:
      case TwoDimWalk::Outcome::kGuestProtection: {
        // ①-③ of Fig. 3(b): guest page faults stay inside L2.
        co_await guest_local_fault_entry();
        const PageFaultInfo fault{gva, access, user_mode,
                                  walk.outcome == TwoDimWalk::Outcome::kGuestProtection};
        co_await kernel.handle_page_fault(vcpu, proc, fault);
        co_await guest_local_fault_return();
        break;
      }
      case TwoDimWalk::Outcome::kEptViolation: {
        const bool backed = co_await handle_ept02_violation(vcpu, walk.violating_gpa);
        if (!backed) {
          // The instance's guest-physical pool is empty and the L1 KVM has
          // no reclaim protocol for EPT12 backing: the faulting process is
          // OOM-killed (during a boot storm this takes init down with it).
          co_await kernel.oom_kill_process(vcpu, proc);
          co_return;
        }
        break;
      }
    }
  }
  fault_loop_error(gva);
}

Task<bool> EptOnEptMemoryBackend::handle_ept02_violation(Vcpu& vcpu, std::uint64_t gpa) {
  obs::SpanScope op(sim_->spans(), obs::Phase::kOpPageFault, gpa);
  trace_->emit(sim_->now(), TraceActor::kHardware, TraceEventKind::kEpt02Violation, {}, gpa);

  // ➊-➌: hardware exit to L0, which sees an EPT violation it cannot satisfy
  // from EPT02 and reflects it into L1 as an EPT12 violation.
  co_await l0_->nested_forward_exit_to_l1(*l1_vm_, vcpu.nested, ExitKind::kEptViolation);

  // ➍: L1's KVM handles the violation under its own per-VM mmu_lock:
  // allocate L1 backing for the L2 page and install the EPT12 leaf. EPT12 is
  // write-protected by L0, so each store traps and is emulated (➎-➐,
  // repeated per touched table level).
  bool backed = true;
  {
    ScopedResource l1_lock = co_await l1_mmu_lock_.scoped();
    co_await sim_->delay(costs_->l0_ept_fill);
    if (const Pte* pte = ept12_.find_pte(gpa); pte == nullptr || !pte->present()) {
      const std::optional<std::uint64_t> gpa_l1 = l1_vm_->gpa_frames().allocate();
      if (!gpa_l1.has_value()) {
        // Instance pool exhausted. The L1 KVM cannot steal another
        // container's EPT12 backing (it has no rmap over sibling VMs), so
        // the violation is unserviceable.
        counters_->add(Counter::kBackingFail);
        backed = false;
      } else {
        const MapResult result = ept12_.map(page_base(gpa), *gpa_l1, PteFlags::rw_kernel());
        for (int i = 0; i < result.entries_written; ++i) {
          co_await l0_->emulate_protected_store(*l1_vm_);
        }
      }
    }
  }
  if (!backed) {
    // Resume L2 anyway so the VMX protocol stays balanced; the caller
    // escalates to the guest OOM killer.
    co_await l0_->nested_resume_l2(*l1_vm_, vcpu.nested);
    co_return false;
  }

  // L1 prepares to resume L2: VMCS12 bookkeeping (free under shadowing).
  co_await l0_->l1_vmcs12_access(*l1_vm_, vcpu.nested, 8);

  // ➑-➓: L1's VMRESUME trap; L0 merges VMCS02 and really enters L2.
  co_await l0_->nested_resume_l2(*l1_vm_, vcpu.nested);

  // ⓫-⓭: L2 faults on EPT02 again immediately; this time L0 can build the
  // compressed entry by composing EPT12 and EPT01 — serialized on the **L1
  // VM's** mmu_lock at L0, shared by every container on the instance.
  co_await l0_->begin_exit(*l1_vm_);
  {
    ScopedResource l0_lock = co_await l1_vm_->mmu_lock().scoped();
    const WalkResult via12 = ept12_.walk(page_base(gpa), AccessType::kRead, false);
    co_await sim_->delay(static_cast<std::uint64_t>(via12.levels_walked) * costs_->walk_load);
    if (via12.present) {
      const std::uint64_t gpa_l1 = via12.pte.frame_number();
      co_await l0_->ensure_backed(*l1_vm_, gpa_l1 << kPageShift);
      const WalkResult via01 =
          l1_vm_->ept().walk(gpa_l1 << kPageShift, AccessType::kRead, false);
      co_await sim_->delay(static_cast<std::uint64_t>(via01.levels_walked) * costs_->walk_load);
      ept02_.map(page_base(gpa), via01.pte.frame_number(), PteFlags::rw_kernel());
      counters_->add(Counter::kEptCompressed);
      co_await sim_->delay(costs_->l0_ept_fill + costs_->tlb_shootdown);
    }
  }
  co_await l0_->finish_entry(*l1_vm_);
  co_return true;
}

Task<void> EptOnEptMemoryBackend::gpt_map(Vcpu& vcpu, GuestProcess& proc, std::uint64_t gva,
                                          std::uint64_t gpa_frame, PteFlags flags) {
  // GPT2 updates are free under EPT-on-EPT (①-③).
  const MapResult result = proc.gpt().map(gva, gpa_frame, flags);
  co_await sim_->delay(static_cast<std::uint64_t>(result.entries_written) *
                       costs_->guest_pte_store);
  if (result.replaced) {
    tlb_drop_page(vcpu, proc, gva);
  }
}

Task<void> EptOnEptMemoryBackend::gpt_unmap(Vcpu& vcpu, GuestProcess& proc, std::uint64_t gva) {
  proc.gpt().unmap(gva);
  co_await sim_->delay(costs_->guest_pte_store + costs_->cr3_write / 2);
  tlb_drop_page(vcpu, proc, gva);
}

Task<void> EptOnEptMemoryBackend::gpt_protect(Vcpu& vcpu, GuestProcess& proc, std::uint64_t gva,
                                              bool writable, bool mark_cow) {
  proc.gpt().update_pte(gva, [&](Pte& pte) {
    pte.set_writable(writable);
    pte.set_cow(mark_cow);
  });
  co_await sim_->delay(costs_->guest_pte_store + costs_->cr3_write / 2);
  tlb_drop_page(vcpu, proc, gva);
}

Task<void> EptOnEptMemoryBackend::activate_process(Vcpu& vcpu, GuestProcess& proc,
                                                   bool kernel_ring) {
  vcpu.state.cr3 = proc.gpt().root_frame();
  vcpu.state.pcid = guest_pcid(proc, !kernel_ring, kpti_);
  co_await sim_->delay(costs_->cr3_write);
}

}  // namespace pvm
