// PVM-on-EPT / PVM shadow paging (paper §3.3.2, Fig. 9).
//
// L1 (the PVM hypervisor) owns dual per-process shadow tables; all fault
// handling happens between L2 and L1 through the switcher — L0 is only ever
// touched for (rare, warm) EPT01 violations. A fresh guest page fault costs
// 2n+4 world switches, each ~7x cheaper than a nested VMX transition, and
// the prefault / PCID-mapping / fine-grained-lock optimizations are all
// applied here.
//
// The same backend serves pvm (BM) — PVM running as the bare-metal host
// hypervisor — by omitting the L1 VM (one-dimensional SPT walks, no L0).

#ifndef PVM_SRC_BACKENDS_PVM_MEMORY_BACKEND_H_
#define PVM_SRC_BACKENDS_PVM_MEMORY_BACKEND_H_

#include <memory>
#include <unordered_set>

#include "src/backends/memory_common.h"
#include "src/core/memory_engine.h"
#include "src/core/pvm_hypervisor.h"
#include "src/hv/host_hypervisor.h"

namespace pvm {

class PvmMemoryBackend : public MemoryBackendBase {
 public:
  // `l0`/`l1_vm` are null for bare-metal deployments.
  PvmMemoryBackend(PvmHypervisor& hypervisor, PvmMemoryEngine& engine, HostHypervisor* l0,
                   HostHypervisor::Vm* l1_vm, std::uint16_t vpid,
                   const std::string& container_name);

  std::string_view name() const override { return l1_vm_ ? "pvm-on-ept" : "pvm-spt"; }

  void on_process_created(GuestProcess& proc) override;
  Task<void> on_process_destroyed(Vcpu& vcpu, GuestProcess& proc) override;
  Task<void> access(Vcpu& vcpu, GuestProcess& proc, GuestKernel& kernel, std::uint64_t gva,
                    AccessType access, bool user_mode) override;
  Task<void> gpt_map(Vcpu& vcpu, GuestProcess& proc, std::uint64_t gva, std::uint64_t gpa_frame,
                     PteFlags flags) override;
  Task<void> gpt_unmap(Vcpu& vcpu, GuestProcess& proc, std::uint64_t gva) override;
  Task<void> gpt_protect(Vcpu& vcpu, GuestProcess& proc, std::uint64_t gva, bool writable,
                         bool mark_cow) override;
  Task<void> activate_process(Vcpu& vcpu, GuestProcess& proc, bool kernel_ring) override;

  PvmMemoryEngine& engine() { return *engine_; }

 protected:
  // A dirty-tracking WP fault resolves through the switcher into the PVM
  // hypervisor — the paper's ~7x-cheaper exit — not a VMX round trip.
  std::uint64_t dirty_exit_roundtrip_ns() const override {
    return 2 * costs_->switcher_switch() + costs_->pvm_exit_dispatch;
  }

 private:
  bool shadowed(const GuestProcess& proc) const { return shadowed_.count(proc.pid()) > 0; }
  std::uint16_t tag_pcid(GuestProcess& proc, bool user_mode);
  // One trapped GPT store: switcher round trip into PVM + emulation.
  Task<void> trapped_store(Vcpu& vcpu, GuestProcess& proc, std::uint64_t gva,
                           GptStoreKind kind);

  // §5 collaborative-PT extension: GPT stores are queued in a shared ring
  // instead of trapping; the queue is drained under one switcher round trip
  // when full, and piggybacked for free whenever PVM is entered anyway.
  struct PendingSync {
    std::uint64_t pid;
    std::uint64_t gva;
    GptStoreKind kind;
  };
  static constexpr std::size_t kSyncRingCapacity = 32;
  bool collaborative() const { return hypervisor_->options().collaborative_pt; }
  // Queues one record; drains with a dedicated round trip when full.
  Task<void> queue_sync(Vcpu& vcpu, GuestProcess& proc, std::uint64_t gva, GptStoreKind kind);
  // Applies all queued records (caller is conceptually in PVM context).
  Task<void> drain_sync_ring(Vcpu& vcpu);

  PvmHypervisor* hypervisor_;
  PvmMemoryEngine* engine_;
  HostHypervisor* l0_;
  HostHypervisor::Vm* l1_vm_;
  std::unordered_set<std::uint64_t> shadowed_;
  std::vector<PendingSync> sync_ring_;
};

}  // namespace pvm

#endif  // PVM_SRC_BACKENDS_PVM_MEMORY_BACKEND_H_
