#include "src/backends/kvm_spt_memory_backend.h"

#include "src/obs/flight.h"
#include "src/obs/span.h"

namespace pvm {

KvmSptMemoryBackend::KvmSptMemoryBackend(HostHypervisor& l0, HostHypervisor::Vm& vm, bool kpti)
    : MemoryBackendBase(l0.sim(), l0.costs(), l0.counters(), l0.trace(), "kvm-spt:" + vm.name(),
                        vm.vpid()),
      l0_(&l0),
      vm_(&vm),
      kpti_(kpti) {
  PvmMemoryEngine::Options options;
  options.prefault = false;
  options.pcid_mapping = false;
  options.fine_grained_locks = false;
  options.dual_spt = kpti;
  engine_ = std::make_unique<PvmMemoryEngine>(l0.sim(), l0.costs(), l0.counters(), l0.trace(),
                                              l0.host_frames(), "kvm-spt:" + vm.name(), options);
}

void KvmSptMemoryBackend::on_process_created(GuestProcess& proc) {
  engine_->create_process(proc.pid(), &proc.gpt());
}

Task<void> KvmSptMemoryBackend::on_process_destroyed(Vcpu& vcpu, GuestProcess& proc) {
  engine_->destroy_process(proc.pid(), vcpu.tlb, vpid_);
  shadowed_.erase(proc.pid());
  co_return;
}

Task<void> KvmSptMemoryBackend::access(Vcpu& vcpu, GuestProcess& proc, GuestKernel& kernel,
                                       std::uint64_t gva, AccessType access, bool user_mode) {
  // Without PCID awareness every guest address space shares tag 0.
  const std::uint16_t pcid = 0;
  obs::SpanScope op;
  for (int attempt = 0; attempt < 16; ++attempt) {
    if (proc.oom_killed()) {
      co_return;  // OOM-killed mid-access; the faulting task is abandoned
    }
    if (tlb_try(vcpu, pcid, gva, access, user_mode)) {
      co_await sim_->delay(costs_->tlb_hit);
      co_await dirty_note(vcpu, proc, gva, access);
      co_return;
    }

    PageTable& spt = engine_->spt(proc.pid(), /*kernel_ring=*/!user_mode);
    const TwoDimWalk walk = walk_one_dimensional(spt, gva, access, user_mode);
    co_await sim_->delay(static_cast<std::uint64_t>(walk.total_loads) * costs_->walk_load);

    if (walk.outcome == TwoDimWalk::Outcome::kOk) {
      vcpu.tlb.insert(vpid_, pcid, page_number(gva),
                      Pte::make(walk.host_frame, walk.guest.pte.flags()));
      co_await sim_->delay(costs_->tlb_fill);
      co_await dirty_note(vcpu, proc, gva, access);
      co_return;
    }

    if (attempt == 0) {
      op = obs::SpanScope(sim_->spans(), obs::Phase::kOpPageFault, gva);
      if (flight::FlightRecorder* flight = sim_->flight()) {
        flight->record(flight::EventKind::kGuestFault, gva,
                       static_cast<std::uint64_t>(proc.pid()));
      }
    }

    // Every fault under shadow paging exits to the hypervisor, which
    // classifies it against the guest's own page table.
    const WalkResult gpt_walk = proc.gpt().walk(gva, access, user_mode);
    const bool guest_has_translation = gpt_walk.present && gpt_walk.permission_ok;

    if (guest_has_translation) {
      // Shadow miss: L0 fills the SPT from the GPT and resumes the guest.
      counters_->add(Counter::kShadowPageFault);
      co_await l0_->begin_exit(*vm_);
      co_await sim_->delay(static_cast<std::uint64_t>(gpt_walk.levels_walked) *
                           costs_->walk_load);
      const bool filled = co_await engine_->fill_spt(proc.pid(), page_base(gva), !user_mode,
                                                     gpt_walk.pte, /*is_prefault=*/false);
      co_await l0_->finish_entry(*vm_);
      if (!filled) {
        co_await kernel.oom_kill_process(vcpu, proc);
        co_return;
      }
      continue;
    }

    // Genuine guest fault: exit, inject #PF, guest kernel repairs its GPT
    // (each store trapping via gpt_map), iret.
    co_await l0_->exit_roundtrip(*vm_, ExitKind::kException);
    const PageFaultInfo fault{gva, access, user_mode, gpt_walk.present};
    co_await kernel.handle_page_fault(vcpu, proc, fault);
    co_await guest_local_fault_return();
  }
  fault_loop_error(gva);
}

Task<void> KvmSptMemoryBackend::trapped_store(Vcpu& vcpu, GuestProcess& proc, std::uint64_t gva,
                                              GptStoreKind kind) {
  co_await l0_->begin_exit(*vm_);
  co_await engine_->emulate_gpt_store(proc.pid(), gva, kind, vcpu.tlb, vpid_,
                                      costs_->l0_ept_emulate_write);
  co_await l0_->finish_entry(*vm_);
}

Task<void> KvmSptMemoryBackend::gpt_map(Vcpu& vcpu, GuestProcess& proc, std::uint64_t gva,
                                        std::uint64_t gpa_frame, PteFlags flags) {
  const MapResult result = proc.gpt().map(gva, gpa_frame, flags);
  if (result.replaced) {
    tlb_drop_page(vcpu, proc, gva);
  }
  if (!shadowed(proc)) {
    co_await sim_->delay(static_cast<std::uint64_t>(result.entries_written) *
                         costs_->guest_pte_store);
    co_return;
  }
  for (int i = 0; i < result.entries_written; ++i) {
    const bool leaf = i == result.entries_written - 1;
    co_await trapped_store(vcpu, proc, gva,
                           leaf ? GptStoreKind::kInstall : GptStoreKind::kTableAlloc);
  }
}

Task<void> KvmSptMemoryBackend::gpt_unmap(Vcpu& vcpu, GuestProcess& proc, std::uint64_t gva) {
  proc.gpt().unmap(gva);
  tlb_drop_page(vcpu, proc, gva);
  if (!shadowed(proc)) {
    co_await sim_->delay(costs_->guest_pte_store);
    co_return;
  }
  co_await trapped_store(vcpu, proc, gva, GptStoreKind::kClear);
}

Task<void> KvmSptMemoryBackend::gpt_protect(Vcpu& vcpu, GuestProcess& proc, std::uint64_t gva,
                                            bool writable, bool mark_cow) {
  proc.gpt().update_pte(gva, [&](Pte& pte) {
    pte.set_writable(writable);
    pte.set_cow(mark_cow);
  });
  tlb_drop_page(vcpu, proc, gva);
  if (!shadowed(proc)) {
    co_await sim_->delay(costs_->guest_pte_store);
    co_return;
  }
  co_await trapped_store(vcpu, proc, gva,
                         writable ? GptStoreKind::kMakeWritable : GptStoreKind::kWriteProtect);
}

Task<void> KvmSptMemoryBackend::activate_process(Vcpu& vcpu, GuestProcess& proc,
                                                 bool kernel_ring) {
  shadowed_.insert(proc.pid());
  // CR3 write is privileged under shadow paging: trap, switch shadow root,
  // flush the guest's TLB footprint (no PCID awareness).
  co_await l0_->exit_roundtrip(*vm_, ExitKind::kCr3Write);
  vcpu.state.pcid = co_await engine_->activate(proc.pid(), kernel_ring, vcpu.tlb, vpid_);
  vcpu.state.cr3 = engine_->spt(proc.pid(), kernel_ring).root_frame();
}

}  // namespace pvm
