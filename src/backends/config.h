// Deployment configurations (paper §4, "five scenarios").

#ifndef PVM_SRC_BACKENDS_CONFIG_H_
#define PVM_SRC_BACKENDS_CONFIG_H_

#include <cstdint>
#include <string_view>

#include "src/sim/simulation.h"

namespace pvm {

enum class DeployMode {
  kKvmEptBm,   // bare-metal, hardware VMX + EPT         ("kvm-ept (BM)")
  kKvmSptBm,   // bare-metal, VMX + shadow paging at L0  ("kvm-spt (BM)")
  kPvmBm,      // PVM as the bare-metal hypervisor       ("pvm (BM)")
  kKvmEptNst,  // nested, EPT-on-EPT                     ("kvm-ept (NST)")
  kPvmNst,     // nested, PVM-on-EPT                     ("pvm (NST)")
  kSptOnEptNst,  // nested, SPT-on-EPT (§2.2 baseline, Fig. 4 "SPT-EPT")
  kPvmDirectNst,  // nested, Xen-like direct paging (§5 future work, ours)
};

constexpr std::string_view deploy_mode_name(DeployMode mode) {
  switch (mode) {
    case DeployMode::kKvmEptBm:
      return "kvm-ept (BM)";
    case DeployMode::kKvmSptBm:
      return "kvm-spt (BM)";
    case DeployMode::kPvmBm:
      return "pvm (BM)";
    case DeployMode::kKvmEptNst:
      return "kvm-ept (NST)";
    case DeployMode::kPvmNst:
      return "pvm (NST)";
    case DeployMode::kSptOnEptNst:
      return "spt-on-ept (NST)";
    case DeployMode::kPvmDirectNst:
      return "pvm-direct (NST)";
  }
  return "?";
}

// CLI-safe spelling of a deployment mode ("pvm", "kvm-spt", "ept", ...);
// shared by simcheck's --modes parser, pvm-matrix specs, and the printed
// reproduce commands so a failure report pastes back verbatim.
constexpr std::string_view deploy_mode_token(DeployMode mode) {
  switch (mode) {
    case DeployMode::kKvmEptBm:
      return "ept-bm";
    case DeployMode::kKvmSptBm:
      return "kvm-spt";
    case DeployMode::kPvmBm:
      return "pvm-bm";
    case DeployMode::kKvmEptNst:
      return "ept";
    case DeployMode::kPvmNst:
      return "pvm";
    case DeployMode::kSptOnEptNst:
      return "spt-on-ept";
    case DeployMode::kPvmDirectNst:
      return "pvm-direct";
  }
  return "?";
}

// Every deployment mode, in enum order (the order "--modes all" expands to).
inline constexpr DeployMode kAllDeployModes[] = {
    DeployMode::kKvmEptBm,    DeployMode::kKvmSptBm,   DeployMode::kPvmBm,
    DeployMode::kKvmEptNst,   DeployMode::kPvmNst,     DeployMode::kSptOnEptNst,
    DeployMode::kPvmDirectNst};

// Parses a mode / policy token; returns false on an unknown spelling.
inline bool parse_deploy_mode_token(std::string_view token, DeployMode* mode) {
  for (const DeployMode m : kAllDeployModes) {
    if (token == deploy_mode_token(m)) {
      *mode = m;
      return true;
    }
  }
  return false;
}

inline bool parse_schedule_policy_token(std::string_view token, SchedulePolicy* policy) {
  for (const SchedulePolicy p :
       {SchedulePolicy::kFifo, SchedulePolicy::kRandom, SchedulePolicy::kLifo}) {
    if (token == schedule_policy_name(p)) {
      *policy = p;
      return true;
    }
  }
  return false;
}

constexpr bool deploy_mode_is_nested(DeployMode mode) {
  return mode == DeployMode::kKvmEptNst || mode == DeployMode::kPvmNst ||
         mode == DeployMode::kSptOnEptNst || mode == DeployMode::kPvmDirectNst;
}

constexpr bool deploy_mode_is_pvm(DeployMode mode) {
  return mode == DeployMode::kPvmBm || mode == DeployMode::kPvmNst ||
         mode == DeployMode::kPvmDirectNst;
}

struct PlatformConfig {
  DeployMode mode = DeployMode::kPvmNst;

  // Guest kernel page table isolation (Tables 1/2 sweep it).
  bool kpti = true;

  // PVM optimizations (Fig. 10 ablations + Table 2).
  bool direct_switch = true;
  bool prefault = true;
  bool pcid_mapping = true;
  bool fine_grained_locks = true;
  // §5 future-work extensions: switcher-side page-fault classification and
  // collaborative (write-protection-free, batched) page-table sync.
  bool switcher_pf_classify = false;
  bool collaborative_pt = false;

  // Host-side nVMX VMCS shadowing (on in the paper's testbed).
  bool vmcs_shadowing = true;

  // Number of leased L1 instances in nested modes; containers are placed
  // round-robin. More instances split the per-L1-VM L0 mmu_lock domain —
  // the scale-out mitigation clouds actually use (each instance is still
  // individually subject to the §2.2 bottleneck).
  int l1_instances = 1;

  // Memory sizes in 4 KiB frames. Generous defaults; frames are bookkeeping
  // only, so large values cost nothing until mapped.
  std::uint64_t host_frames = 64ull << 20;       // 256 GiB
  std::uint64_t l1_frames = 48ull << 20;         // 192 GiB L1 instance
  std::uint64_t container_frames = 2ull << 20;   // 8 GiB per secure container

  // Host hardware parallelism (2x Xeon 8269CY with HT = 104 threads).
  int host_cpus = 104;

  // Tie-breaking rule for same-timestamp simulation events (simcheck's
  // schedule-exploration axis). kFifo reproduces the historical schedule
  // bit-for-bit; each (kRandom, schedule_seed) pair deterministically
  // explores a different legal interleaving.
  SchedulePolicy schedule_policy = SchedulePolicy::kFifo;
  std::uint64_t schedule_seed = 0;

  // Arms the SPT coherence oracle on every shadow-paging engine the
  // platform creates: structural invariants are re-verified after each
  // quiescent engine mutation (strict guest-PT agreement is additionally
  // checked at explicit quiescent points unless collaborative_pt defers
  // sync legitimately).
  bool coherence_oracle = false;
};

}  // namespace pvm

#endif  // PVM_SRC_BACKENDS_CONFIG_H_
