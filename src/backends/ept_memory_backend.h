// kvm-ept (BM): single-level hardware memory virtualization.
//
// The guest owns GPT2 and handles its own page faults without exits; only
// EPT01 violations (first touch of a guest-physical page) reach L0. This is
// the baseline every other scheme is measured against.

#ifndef PVM_SRC_BACKENDS_EPT_MEMORY_BACKEND_H_
#define PVM_SRC_BACKENDS_EPT_MEMORY_BACKEND_H_

#include "src/backends/memory_common.h"
#include "src/hv/host_hypervisor.h"

namespace pvm {

class EptMemoryBackend : public MemoryBackendBase {
 public:
  EptMemoryBackend(HostHypervisor& l0, HostHypervisor::Vm& vm, bool kpti)
      : MemoryBackendBase(l0.sim(), l0.costs(), l0.counters(), l0.trace(),
                          "ept:" + vm.name(), vm.vpid()),
        l0_(&l0),
        vm_(&vm),
        kpti_(kpti) {}

  std::string_view name() const override { return "kvm-ept"; }

  Task<void> access(Vcpu& vcpu, GuestProcess& proc, GuestKernel& kernel, std::uint64_t gva,
                    AccessType access, bool user_mode) override;
  Task<void> gpt_map(Vcpu& vcpu, GuestProcess& proc, std::uint64_t gva, std::uint64_t gpa_frame,
                     PteFlags flags) override;
  Task<void> gpt_unmap(Vcpu& vcpu, GuestProcess& proc, std::uint64_t gva) override;
  Task<void> gpt_protect(Vcpu& vcpu, GuestProcess& proc, std::uint64_t gva, bool writable,
                         bool mark_cow) override;
  Task<void> activate_process(Vcpu& vcpu, GuestProcess& proc, bool kernel_ring) override;

 private:
  HostHypervisor* l0_;
  HostHypervisor::Vm* vm_;
  bool kpti_;
};

}  // namespace pvm

#endif  // PVM_SRC_BACKENDS_EPT_MEMORY_BACKEND_H_
