// SPT-on-EPT (NST): shadow paging in the L1 hypervisor with every L2<->L1
// transition mediated by L0 (paper §2.2 Fig. 3a).
//
// The worst of both worlds — a fresh L2 page fault costs 4n+8 world switches
// and 2n+4 exits to L0 — included as the Fig. 4 "SPT-EPT" baseline. Shares
// the generic shadow engine (no PVM optimizations) with kvm-spt; what differs
// is that each trap is a full nested round trip instead of one VMX exit.

#ifndef PVM_SRC_BACKENDS_SPT_ON_EPT_MEMORY_BACKEND_H_
#define PVM_SRC_BACKENDS_SPT_ON_EPT_MEMORY_BACKEND_H_

#include <memory>
#include <unordered_set>

#include "src/backends/memory_common.h"
#include "src/core/memory_engine.h"
#include "src/hv/host_hypervisor.h"

namespace pvm {

class SptOnEptMemoryBackend : public MemoryBackendBase {
 public:
  SptOnEptMemoryBackend(HostHypervisor& l0, HostHypervisor::Vm& l1_vm, std::uint16_t l2_vpid,
                        const std::string& container_name, bool kpti);

  std::string_view name() const override { return "spt-on-ept"; }

  void on_process_created(GuestProcess& proc) override;
  Task<void> on_process_destroyed(Vcpu& vcpu, GuestProcess& proc) override;
  Task<void> access(Vcpu& vcpu, GuestProcess& proc, GuestKernel& kernel, std::uint64_t gva,
                    AccessType access, bool user_mode) override;
  Task<void> gpt_map(Vcpu& vcpu, GuestProcess& proc, std::uint64_t gva, std::uint64_t gpa_frame,
                     PteFlags flags) override;
  Task<void> gpt_unmap(Vcpu& vcpu, GuestProcess& proc, std::uint64_t gva) override;
  Task<void> gpt_protect(Vcpu& vcpu, GuestProcess& proc, std::uint64_t gva, bool writable,
                         bool mark_cow) override;
  Task<void> activate_process(Vcpu& vcpu, GuestProcess& proc, bool kernel_ring) override;

  PvmMemoryEngine& engine() { return *engine_; }

 private:
  bool shadowed(const GuestProcess& proc) const { return shadowed_.count(proc.pid()) > 0; }
  // A trapped GPT store: L2 -> L0 -> L1 emulates -> L0 -> L2.
  Task<void> trapped_store(Vcpu& vcpu, GuestProcess& proc, std::uint64_t gva,
                           GptStoreKind kind);

  HostHypervisor* l0_;
  HostHypervisor::Vm* l1_vm_;
  bool kpti_;
  std::unique_ptr<PvmMemoryEngine> engine_;
  std::unordered_set<std::uint64_t> shadowed_;
};

}  // namespace pvm

#endif  // PVM_SRC_BACKENDS_SPT_ON_EPT_MEMORY_BACKEND_H_
