// kvm-spt (BM): classic software shadow paging at the host hypervisor.
//
// L0 maintains per-process shadow tables (GVA -> HPA) synchronized with the
// write-protected guest GPT. Every guest page fault exits to L0; every GPT
// store is emulated; CR3 writes trap. No prefault, no PCID mapping, one
// global per-VM mmu_lock — the software baseline PVM improves on.
// (Implemented over the generic shadow engine with all PVM optimizations
// switched off.)

#ifndef PVM_SRC_BACKENDS_KVM_SPT_MEMORY_BACKEND_H_
#define PVM_SRC_BACKENDS_KVM_SPT_MEMORY_BACKEND_H_

#include <memory>
#include <unordered_set>

#include "src/backends/memory_common.h"
#include "src/core/memory_engine.h"
#include "src/hv/host_hypervisor.h"

namespace pvm {

class KvmSptMemoryBackend : public MemoryBackendBase {
 public:
  KvmSptMemoryBackend(HostHypervisor& l0, HostHypervisor::Vm& vm, bool kpti);

  std::string_view name() const override { return "kvm-spt"; }

  void on_process_created(GuestProcess& proc) override;
  Task<void> on_process_destroyed(Vcpu& vcpu, GuestProcess& proc) override;
  Task<void> access(Vcpu& vcpu, GuestProcess& proc, GuestKernel& kernel, std::uint64_t gva,
                    AccessType access, bool user_mode) override;
  Task<void> gpt_map(Vcpu& vcpu, GuestProcess& proc, std::uint64_t gva, std::uint64_t gpa_frame,
                     PteFlags flags) override;
  Task<void> gpt_unmap(Vcpu& vcpu, GuestProcess& proc, std::uint64_t gva) override;
  Task<void> gpt_protect(Vcpu& vcpu, GuestProcess& proc, std::uint64_t gva, bool writable,
                         bool mark_cow) override;
  Task<void> activate_process(Vcpu& vcpu, GuestProcess& proc, bool kernel_ring) override;

  PvmMemoryEngine& engine() { return *engine_; }

 private:
  // Is the process's GPT registered for write protection yet? (Happens on
  // first activation; a fork child's table is built untracked.)
  bool shadowed(const GuestProcess& proc) const {
    return shadowed_.count(proc.pid()) > 0;
  }
  // One trapped GPT store: exit, emulate, keep shadows coherent, entry.
  Task<void> trapped_store(Vcpu& vcpu, GuestProcess& proc, std::uint64_t gva,
                           GptStoreKind kind);

  HostHypervisor* l0_;
  HostHypervisor::Vm* vm_;
  bool kpti_;
  std::unique_ptr<PvmMemoryEngine> engine_;
  std::unordered_set<std::uint64_t> shadowed_;
};

}  // namespace pvm

#endif  // PVM_SRC_BACKENDS_KVM_SPT_MEMORY_BACKEND_H_
