#include "src/backends/platform.h"

#include <stdexcept>

#include "src/obs/span.h"
#include "src/obs/ts.h"

#include "src/backends/ept_memory_backend.h"
#include "src/backends/ept_on_ept_memory_backend.h"
#include "src/backends/kvm_spt_memory_backend.h"
#include "src/backends/pvm_cpu_backend.h"
#include "src/backends/pvm_direct_memory_backend.h"
#include "src/backends/pvm_memory_backend.h"
#include "src/backends/spt_on_ept_memory_backend.h"
#include "src/backends/vmx_cpu_backend.h"

namespace pvm {

Task<void> SecureContainer::compute(SimTime ns) {
  obs::SpanScope span(sim_->spans(), obs::Phase::kCompute, ns);
  // Timeslice through the host CPU pool: FIFO quanta approximate the host
  // scheduler's round robin. Uncontended, this degenerates to a plain delay.
  constexpr SimTime kQuantum = 1 * kNsPerMs;
  SimTime remaining = ns;
  while (remaining > 0) {
    const SimTime slice = remaining < kQuantum ? remaining : kQuantum;
    ScopedResource cpu = co_await platform_->host_cpus().scoped();
    co_await sim_->delay(slice);
    remaining -= slice;
  }
}

Task<void> SecureContainer::boot(int init_pages, std::uint64_t image_bytes) {
  obs::SpanScope span(sim_->spans(), obs::Phase::kOpBoot,
                      static_cast<std::uint64_t>(init_pages));
  const SimTime start = sim_->now();
  Vcpu& vcpu = add_vcpu();
  init_process_ = co_await kernel_->create_init_process(vcpu, init_pages);
  if (init_process_ == nullptr || init_process_->oom_killed()) {
    // The boot storm exhausted backing memory before init came up; the
    // container never starts.
    boot_failed_ = true;
    boot_latency_ = sim_->now() - start;
    if (ts::Collector* ts = sim_->ts()) {
      ts->count("boot_failures");
      ts->observe("boot_latency_ns", boot_latency_);
    }
    co_return;
  }
  // Pull the container image / rootfs metadata: one I/O burst.
  co_await kernel_->do_io(vcpu, *init_process_, *io_, image_bytes);
  if (init_process_->oom_killed()) {
    boot_failed_ = true;
  }
  boot_latency_ = sim_->now() - start;
  if (ts::Collector* ts = sim_->ts()) {
    ts->count(boot_failed_ ? "boot_failures" : "boot_completions");
    ts->observe("boot_latency_ns", boot_latency_);
  }
}

VirtualPlatform::VirtualPlatform(const PlatformConfig& config)
    : config_(config), l0_(sim_, costs_, counters_, trace_, config.host_frames) {
  // Before any work is spawned, so the whole run uses one schedule.
  sim_.set_schedule_policy(config_.schedule_policy, config_.schedule_seed);
  // The flight recorder is always on: every instrumented site pays one null
  // check, and a failure anywhere in the run can dump the last N events.
  sim_.set_flight(&flight_);
  if (deploy_mode_is_nested(config_.mode)) {
    // The general-purpose instances leased from the IaaS cloud:
    // long-running, EPT01 warm (§4's assumption).
    const int instances = config_.l1_instances > 0 ? config_.l1_instances : 1;
    for (int i = 0; i < instances; ++i) {
      const std::string name =
          instances == 1 ? "l1-instance" : "l1-instance" + std::to_string(i);
      l1_vms_.push_back(&l0_.create_vm(name, config_.l1_frames, /*prewarm_ept=*/true));
    }
  }
  if (deploy_mode_is_pvm(config_.mode)) {
    PvmHypervisor::Options options;
    options.direct_switch = config_.direct_switch;
    options.prefault = config_.prefault;
    options.pcid_mapping = config_.pcid_mapping;
    options.fine_grained_locks = config_.fine_grained_locks;
    options.dual_spt = true;  // PVM always isolates guest user/kernel
    options.switcher_pf_classify = config_.switcher_pf_classify;
    options.collaborative_pt = config_.collaborative_pt;
    pvm_ = std::make_unique<PvmHypervisor>(sim_, costs_, counters_, trace_, options);
  }
}

VirtualPlatform::~VirtualPlatform() {
  // Pending frames hold ScopedResource guards on locks owned by the members
  // below; destroy the frames while those locks are still alive.
  sim_.abandon_pending();
}

SecureContainer& VirtualPlatform::create_container(const std::string& name) {
  auto container = std::unique_ptr<SecureContainer>(new SecureContainer());
  SecureContainer& c = *container;
  c.name_ = name;
  c.sim_ = &sim_;
  c.platform_ = this;
  c.io_ = std::make_unique<IoDevice>(sim_, costs_, name + ".virtio");

  const std::uint16_t l2_vpid = next_l2_vpid_++;
  // Round-robin placement across the leased L1 instances (nested modes).
  HostHypervisor::Vm* const placed_l1 =
      l1_vms_.empty() ? nullptr : l1_vms_[containers_.size() % l1_vms_.size()];

  switch (config_.mode) {
    case DeployMode::kKvmEptBm: {
      c.vm_ = &l0_.create_vm(name, config_.container_frames, /*prewarm_ept=*/false);
      c.gpa_frames_ = &c.vm_->gpa_frames();
      c.mem_ = std::make_unique<EptMemoryBackend>(l0_, *c.vm_, config_.kpti);
      VmxCpuBackend::Options cpu_options;
      cpu_options.kpti = config_.kpti;
      c.cpu_ = std::make_unique<VmxCpuBackend>(l0_, *c.vm_, cpu_options);
      break;
    }
    case DeployMode::kKvmSptBm: {
      c.vm_ = &l0_.create_vm(name, config_.container_frames, /*prewarm_ept=*/false);
      c.gpa_frames_ = &c.vm_->gpa_frames();
      c.mem_ = std::make_unique<KvmSptMemoryBackend>(l0_, *c.vm_, config_.kpti);
      VmxCpuBackend::Options cpu_options;
      cpu_options.kpti = config_.kpti;
      cpu_options.spt_mode = true;
      c.cpu_ = std::make_unique<VmxCpuBackend>(l0_, *c.vm_, cpu_options);
      break;
    }
    case DeployMode::kPvmBm: {
      c.owned_gpa_ = std::make_unique<FrameAllocator>(name + ".gpa", config_.container_frames);
      c.gpa_frames_ = c.owned_gpa_.get();
      c.engine_ = pvm_->create_memory_engine(l0_.host_frames(), name);
      c.mem_ = std::make_unique<PvmMemoryBackend>(*pvm_, *c.engine_, nullptr, nullptr, l2_vpid,
                                                  name);
      c.cpu_ = std::make_unique<PvmCpuBackend>(*pvm_, *c.engine_, nullptr, nullptr, l2_vpid);
      break;
    }
    case DeployMode::kKvmEptNst: {
      c.owned_gpa_ = std::make_unique<FrameAllocator>(name + ".gpa", config_.container_frames);
      c.gpa_frames_ = c.owned_gpa_.get();
      placed_l1->set_nested_vmx_active(true);  // nVMX in use: L1 pinned (§2.3)
      c.mem_ = std::make_unique<EptOnEptMemoryBackend>(l0_, *placed_l1, l2_vpid, name,
                                                       config_.kpti);
      VmxCpuBackend::Options cpu_options;
      cpu_options.kpti = config_.kpti;
      cpu_options.nested = true;
      c.cpu_ = std::make_unique<VmxCpuBackend>(l0_, *placed_l1, cpu_options);
      break;
    }
    case DeployMode::kPvmNst: {
      c.owned_gpa_ = std::make_unique<FrameAllocator>(name + ".gpa", config_.container_frames);
      c.gpa_frames_ = c.owned_gpa_.get();
      c.engine_ = pvm_->create_memory_engine(placed_l1->gpa_frames(), name);
      c.mem_ = std::make_unique<PvmMemoryBackend>(*pvm_, *c.engine_, &l0_, placed_l1, l2_vpid,
                                                  name);
      c.cpu_ = std::make_unique<PvmCpuBackend>(*pvm_, *c.engine_, &l0_, placed_l1, l2_vpid);
      break;
    }
    case DeployMode::kPvmDirectNst: {
      // Direct paging: the guest's "physical" space IS the L1 space — its
      // page tables hold machine frames, so no shadow dimension exists.
      c.gpa_frames_ = &placed_l1->gpa_frames();
      c.engine_ = pvm_->create_memory_engine(placed_l1->gpa_frames(), name);  // PCID reuse
      c.mem_ = std::make_unique<PvmDirectMemoryBackend>(*pvm_, &l0_, placed_l1, l2_vpid, name);
      c.cpu_ = std::make_unique<PvmCpuBackend>(*pvm_, *c.engine_, &l0_, placed_l1, l2_vpid);
      break;
    }
    case DeployMode::kSptOnEptNst: {
      c.owned_gpa_ = std::make_unique<FrameAllocator>(name + ".gpa", config_.container_frames);
      c.gpa_frames_ = c.owned_gpa_.get();
      placed_l1->set_nested_vmx_active(true);  // nVMX in use: L1 pinned (§2.3)
      c.mem_ = std::make_unique<SptOnEptMemoryBackend>(l0_, *placed_l1, l2_vpid, name,
                                                       config_.kpti);
      VmxCpuBackend::Options cpu_options;
      cpu_options.kpti = config_.kpti;
      cpu_options.nested = true;
      cpu_options.spt_mode = true;
      c.cpu_ = std::make_unique<VmxCpuBackend>(l0_, *placed_l1, cpu_options);
      break;
    }
  }

  // Migration dirty tracking: each backend notes guest stores against the VM
  // that L0 would migrate — the container VM in bare-metal modes, the
  // hosting L1 instance when nested. pvm (BM) has no L0-visible VM at all.
  if (HostHypervisor::Vm* tracked = c.vm_ != nullptr ? c.vm_ : placed_l1;
      tracked != nullptr) {
    if (auto* mem_base = dynamic_cast<MemoryBackendBase*>(c.mem_.get())) {
      mem_base->set_dirty_tracker(&tracked->dirty_tracker());
    }
  }

  c.kernel_ = std::make_unique<GuestKernel>(sim_, costs_, counters_, *c.gpa_frames_, *c.mem_,
                                            *c.cpu_, config_.kpti);
  containers_.push_back(std::move(container));
  SecureContainer* raw = containers_.back().get();
  const auto vcpu_provider = [raw]() { return raw->vcpu_count(); };
  if (raw->engine_) {
    raw->engine_->set_vcpu_count_provider(vcpu_provider);
  }
  if (auto* spt = dynamic_cast<KvmSptMemoryBackend*>(raw->mem_.get())) {
    spt->engine().set_vcpu_count_provider(vcpu_provider);
  }
  if (auto* soe = dynamic_cast<SptOnEptMemoryBackend*>(raw->mem_.get())) {
    soe->engine().set_vcpu_count_provider(vcpu_provider);
  }
  if (config_.coherence_oracle) {
    if (PvmMemoryEngine* engine = raw->shadow_engine()) {
      // Collaborative PT sync legitimately defers shadow updates through its
      // batch ring, so strict guest-PT agreement would false-positive there.
      engine->enable_coherence_oracle(/*strict_gpt=*/!config_.collaborative_pt);
    }
  }
  if (PvmMemoryEngine* engine = raw->shadow_engine()) {
    // A reclaim that zaps live shadow entries must invalidate every vCPU
    // that may cache stale translations: full-VPID flush, same hammer a
    // real SPT zap swings.
    const std::uint16_t flush_vpid = raw->vm_ != nullptr ? raw->vm_->vpid() : l2_vpid;
    engine->set_reclaim_flush([raw, flush_vpid]() {
      for (std::size_t i = 0; i < raw->vcpu_count(); ++i) {
        raw->vcpu(i).tlb.flush_vpid(flush_vpid);
      }
    });
  }
  if (faults_ != nullptr) {
    raw->gpa_frames_->set_faults(faults_);
  }
  return *raw;
}

void VirtualPlatform::arm_faults(fault::FaultInjector* faults) {
  faults_ = faults;
  sim_.set_faults(faults);
  l0_.host_frames().set_faults(faults);
  for (HostHypervisor::Vm* vm : l1_vms_) {
    vm->gpa_frames().set_faults(faults);
  }
  for (const auto& container : containers_) {
    container->gpa_frames_->set_faults(faults);
  }
}

PvmMemoryEngine* SecureContainer::shadow_engine() {
  if (engine_) {
    return engine_.get();
  }
  if (auto* spt = dynamic_cast<KvmSptMemoryBackend*>(mem_.get())) {
    return &spt->engine();
  }
  if (auto* soe = dynamic_cast<SptOnEptMemoryBackend*>(mem_.get())) {
    return &soe->engine();
  }
  return nullptr;
}

SlabStats VirtualPlatform::engine_alloc_stats() {
  SlabStats stats;
  for (const auto& container : containers_) {
    if (PvmMemoryEngine* engine = container->shadow_engine()) {
      stats += engine->alloc_stats();
    }
  }
  return stats;
}

std::size_t VirtualPlatform::total_vcpus() const {
  std::size_t total = 0;
  for (const auto& container : containers_) {
    total += container->vcpu_count();
  }
  return total;
}

double VirtualPlatform::oversubscription_factor() const {
  const double total = static_cast<double>(total_vcpus());
  const double cpus = static_cast<double>(config_.host_cpus);
  return total > cpus ? total / cpus : 1.0;
}

}  // namespace pvm
