// Platform assembly: one deployment configuration, fully wired.
//
// VirtualPlatform owns the simulation, the L0 host hypervisor, the L1
// instance and PVM hypervisor (when the mode calls for them), and the secure
// containers. It is the top-level object examples, tests, and benchmarks
// construct:
//
//   VirtualPlatform platform({.mode = DeployMode::kPvmNst});
//   SecureContainer& c = platform.create_container("c0");
//   platform.sim().spawn(c.boot());
//   platform.sim().run();

#ifndef PVM_SRC_BACKENDS_PLATFORM_H_
#define PVM_SRC_BACKENDS_PLATFORM_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/arch/cost_model.h"
#include "src/backends/config.h"
#include "src/core/memory_engine.h"
#include "src/core/pvm_hypervisor.h"
#include "src/guest/backend_iface.h"
#include "src/guest/guest_kernel.h"
#include "src/guest/io_device.h"
#include "src/hv/host_hypervisor.h"
#include "src/metrics/counters.h"
#include "src/obs/flight.h"
#include "src/sim/simulation.h"
#include "src/trace/trace.h"

namespace pvm {

class VirtualPlatform;

// A secure container: one lightweight VM (Kata-style) with its own guest
// kernel, paravirtual I/O device, and vCPUs.
class SecureContainer {
 public:
  const std::string& name() const { return name_; }
  Simulation& sim() { return *sim_; }
  GuestKernel& kernel() { return *kernel_; }
  IoDevice& io() { return *io_; }
  FrameAllocator& gpa_frames() { return *gpa_frames_; }
  MemoryBackend& mem() { return *mem_; }
  CpuBackend& cpu() { return *cpu_; }

  Vcpu& add_vcpu() {
    vcpus_.push_back(std::make_unique<Vcpu>(static_cast<int>(vcpus_.size())));
    return *vcpus_.back();
  }
  Vcpu& vcpu(std::size_t index) { return *vcpus_.at(index); }
  std::size_t vcpu_count() const { return vcpus_.size(); }

  // Container startup (RunD-style): boot vCPU 0, create the init process
  // with `init_pages` resident pages, load the image (one I/O burst of
  // `image_bytes`). Records the startup latency for the high-density
  // experiment (Fig. 12). Snapshot-restore starts (pvm::fleet) pass a
  // smaller resident set and image than a from-scratch boot.
  Task<void> boot(int init_pages = 64, std::uint64_t image_bytes = 256 * 1024);

  // Charges `ns` of guest compute on a host CPU. With more runnable vCPUs
  // than host CPUs the pool queues in timeslices, so oversubscription
  // slowdown (Fig. 12) emerges from contention rather than a scale factor.
  Task<void> compute(SimTime ns);

  GuestProcess* init_process() { return init_process_; }
  SimTime boot_latency() const { return boot_latency_; }

  // True when boot() could not bring the init process up (it was OOM-killed
  // while the host was exhausted, or the watchdog killed the container).
  // Fig. 12 counts these as container crashes.
  bool boot_failed() const { return boot_failed_; }

  // The shadow-paging engine backing this container, if the deployment mode
  // has one (PVM modes, kvm-spt, spt-on-ept); null for EPT/direct-paging
  // modes. simcheck uses it to run strict oracle checks at quiescent points.
  PvmMemoryEngine* shadow_engine();

  // The L0 VM directly hosting this container in bare-metal modes (the one
  // L0 would migrate); null in nested modes, where the migratable unit is
  // the shared L1 instance (VirtualPlatform::l1_vm()).
  HostHypervisor::Vm* host_vm() { return vm_; }

 private:
  friend class VirtualPlatform;
  SecureContainer() = default;

  std::string name_;
  Simulation* sim_ = nullptr;
  VirtualPlatform* platform_ = nullptr;
  FrameAllocator* gpa_frames_ = nullptr;
  std::unique_ptr<FrameAllocator> owned_gpa_;
  std::unique_ptr<PvmMemoryEngine> engine_;
  std::unique_ptr<MemoryBackend> mem_;
  std::unique_ptr<CpuBackend> cpu_;
  std::unique_ptr<GuestKernel> kernel_;
  std::unique_ptr<IoDevice> io_;
  std::vector<std::unique_ptr<Vcpu>> vcpus_;
  HostHypervisor::Vm* vm_ = nullptr;  // bare-metal modes only
  GuestProcess* init_process_ = nullptr;
  SimTime boot_latency_ = 0;
  bool boot_failed_ = false;
};

class VirtualPlatform {
 public:
  explicit VirtualPlatform(const PlatformConfig& config);
  // Destroys any still-pending root coroutines before the members (locks,
  // engines, containers) their frames hold guards on — required when the
  // platform is torn down after a deadlocked run (simcheck does this).
  ~VirtualPlatform();
  VirtualPlatform(const VirtualPlatform&) = delete;
  VirtualPlatform& operator=(const VirtualPlatform&) = delete;

  const PlatformConfig& config() const { return config_; }
  Simulation& sim() { return sim_; }
  CounterSet& counters() { return counters_; }
  TraceLog& trace() { return trace_; }
  const CostModel& costs() const { return costs_; }
  HostHypervisor& l0() { return l0_; }
  // The first (or only) L1 instance; null in bare-metal modes.
  HostHypervisor::Vm* l1_vm() { return l1_vms_.empty() ? nullptr : l1_vms_.front(); }
  const std::vector<HostHypervisor::Vm*>& l1_vms() const { return l1_vms_; }
  PvmHypervisor* pvm() { return pvm_.get(); }

  SecureContainer& create_container(const std::string& name);
  const std::vector<std::unique_ptr<SecureContainer>>& containers() const {
    return containers_;
  }

  // Total guest vCPUs across containers, and the compute-slowdown factor
  // when they oversubscribe the host (Fig. 12 regime).
  std::size_t total_vcpus() const;
  double oversubscription_factor() const;

  // The host's physical CPUs; guest compute bursts queue here in timeslices.
  Resource& host_cpus() { return host_cpus_; }

  // Arms deterministic fault injection across every layer in one call: the
  // simulation (lock handoff delays, exit spikes, VMRESUME failures), the L0
  // host frame pool, each L1 instance's GPA pool, and each container's own
  // allocator. Containers created after the call are wired on creation.
  // Pass nullptr to disarm. The injector must outlive the platform's runs.
  void arm_faults(fault::FaultInjector* faults);
  fault::FaultInjector* faults() const { return faults_; }

  // The always-on black-box flight recorder. Every platform owns one and
  // attaches it to the simulation at construction, so the last N events per
  // track are available for a postmortem dump on any failure path.
  flight::FlightRecorder& flight() { return flight_; }
  const flight::FlightRecorder& flight() const { return flight_; }

  // Aggregated arena accounting across every container's shadow engine:
  // page-table nodes (shadow tables + gpa_map) plus rmap chain nodes. All
  // zeros in modes with no shadow dimension (EPT, direct paging). Feeds the
  // opt-in `alloc` section of the bench export (--alloc-stats).
  SlabStats engine_alloc_stats();

 private:
  PlatformConfig config_;
  CostModel costs_;
  Simulation sim_;
  Resource host_cpus_{sim_, "host.cpus",
                      static_cast<std::uint32_t>(config_.host_cpus > 0 ? config_.host_cpus : 1)};
  CounterSet counters_;
  TraceLog trace_;
  flight::FlightRecorder flight_;
  HostHypervisor l0_;
  std::vector<HostHypervisor::Vm*> l1_vms_;
  std::unique_ptr<PvmHypervisor> pvm_;
  std::vector<std::unique_ptr<SecureContainer>> containers_;
  std::uint16_t next_l2_vpid_ = 100;
  fault::FaultInjector* faults_ = nullptr;
};

}  // namespace pvm

#endif  // PVM_SRC_BACKENDS_PLATFORM_H_
