#include "src/backends/ept_memory_backend.h"

#include "src/obs/flight.h"
#include "src/obs/span.h"

namespace pvm {

Task<void> EptMemoryBackend::access(Vcpu& vcpu, GuestProcess& proc, GuestKernel& kernel,
                                    std::uint64_t gva, AccessType access, bool user_mode) {
  const std::uint16_t pcid = guest_pcid(proc, user_mode, kpti_);
  obs::SpanScope op;
  for (int attempt = 0; attempt < 16; ++attempt) {
    if (proc.oom_killed()) {
      co_return;  // OOM-killed mid-access; the faulting task is abandoned
    }
    if (tlb_try(vcpu, pcid, gva, access, user_mode)) {
      co_await sim_->delay(costs_->tlb_hit);
      co_await dirty_note(vcpu, proc, gva, access);
      co_return;
    }

    const TwoDimWalk walk =
        walk_two_dimensional(proc.gpt(), vm_->ept(), gva, access, user_mode);
    co_await sim_->delay(static_cast<std::uint64_t>(walk.total_loads) * costs_->walk_load);

    if (walk.outcome != TwoDimWalk::Outcome::kOk && attempt == 0) {
      op = obs::SpanScope(sim_->spans(), obs::Phase::kOpPageFault, gva);
      if (flight::FlightRecorder* flight = sim_->flight()) {
        flight->record(flight::EventKind::kGuestFault, gva,
                       static_cast<std::uint64_t>(proc.pid()));
      }
    }
    switch (walk.outcome) {
      case TwoDimWalk::Outcome::kOk:
        vcpu.tlb.insert(vpid_, pcid, page_number(gva),
                        Pte::make(walk.host_frame, walk.guest.pte.flags()));
        co_await sim_->delay(costs_->tlb_fill);
        co_await dirty_note(vcpu, proc, gva, access);
        co_return;
      case TwoDimWalk::Outcome::kGuestNotPresent:
      case TwoDimWalk::Outcome::kGuestProtection: {
        // Handled entirely inside the guest — no exits.
        co_await guest_local_fault_entry();
        const PageFaultInfo fault{gva, access, user_mode,
                                  walk.outcome == TwoDimWalk::Outcome::kGuestProtection};
        co_await kernel.handle_page_fault(vcpu, proc, fault);
        co_await guest_local_fault_return();
        break;
      }
      case TwoDimWalk::Outcome::kEptViolation:
        co_await l0_->ensure_backed(*vm_, walk.violating_gpa);
        break;
    }
  }
  fault_loop_error(gva);
}

Task<void> EptMemoryBackend::gpt_map(Vcpu& vcpu, GuestProcess& proc, std::uint64_t gva,
                                     std::uint64_t gpa_frame, PteFlags flags) {
  const MapResult result = proc.gpt().map(gva, gpa_frame, flags);
  co_await sim_->delay(static_cast<std::uint64_t>(result.entries_written) *
                       costs_->guest_pte_store);
  if (result.replaced) {
    tlb_drop_page(vcpu, proc, gva);
  }
}

Task<void> EptMemoryBackend::gpt_unmap(Vcpu& vcpu, GuestProcess& proc, std::uint64_t gva) {
  proc.gpt().unmap(gva);
  // invlpg after the clear.
  co_await sim_->delay(costs_->guest_pte_store + costs_->cr3_write / 2);
  tlb_drop_page(vcpu, proc, gva);
}

Task<void> EptMemoryBackend::gpt_protect(Vcpu& vcpu, GuestProcess& proc, std::uint64_t gva,
                                         bool writable, bool mark_cow) {
  proc.gpt().update_pte(gva, [&](Pte& pte) {
    pte.set_writable(writable);
    pte.set_cow(mark_cow);
  });
  co_await sim_->delay(costs_->guest_pte_store + costs_->cr3_write / 2);
  tlb_drop_page(vcpu, proc, gva);
}

Task<void> EptMemoryBackend::activate_process(Vcpu& vcpu, GuestProcess& proc,
                                              bool kernel_ring) {
  // CR3 write in non-root mode: no exit, PCID keeps the TLB warm.
  vcpu.state.cr3 = proc.gpt().root_frame();
  vcpu.state.pcid = guest_pcid(proc, !kernel_ring, kpti_);
  co_await sim_->delay(costs_->cr3_write);
}

}  // namespace pvm
