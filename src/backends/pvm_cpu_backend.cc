#include "src/backends/pvm_cpu_backend.h"

#include "src/obs/span.h"

namespace pvm {

void PvmCpuBackend::world_switch_tlb_policy(Vcpu& vcpu) {
  if (!engine_->options().pcid_mapping) {
    // Traditional shadow paging: the guest's whole VPID tag is flushed on
    // every world switch (§3.3.2) — the cold-start penalty PCID mapping
    // exists to remove.
    vcpu.tlb.flush_vpid(vpid_);
  }
}

Task<void> PvmCpuBackend::syscall_enter(Vcpu& vcpu, GuestProcess& proc) {
  obs::SpanScope op(hypervisor_->sim().spans(), obs::Phase::kOpSyscall);
  Switcher& switcher = hypervisor_->switcher();
  world_switch_tlb_policy(vcpu);
  if (hypervisor_->options().direct_switch) {
    co_await switcher.direct_switch_to_kernel(vcpu.switcher_state, vcpu.state);
  } else {
    // Without direct switching every syscall detours through the hypervisor,
    // which builds the syscall frame itself.
    co_await switcher.to_hypervisor(vcpu.switcher_state, vcpu.state, SwitchReason::kSyscall);
    co_await hypervisor_->sim().delay(hypervisor_->costs().pvm_exit_dispatch +
                                      hypervisor_->costs().pvm_syscall_emulation);
    co_await switcher.enter_guest(vcpu.switcher_state, vcpu.state, VirtRing::kVRing0);
  }
  vcpu.state.pcid = engine_->pcid_mapper().map(proc.pid(), /*kernel_ring=*/true).hw_pcid;
}

Task<void> PvmCpuBackend::syscall_exit(Vcpu& vcpu, GuestProcess& proc) {
  obs::SpanScope op(hypervisor_->sim().spans(), obs::Phase::kOpSyscall);
  Switcher& switcher = hypervisor_->switcher();
  world_switch_tlb_policy(vcpu);
  if (hypervisor_->options().direct_switch) {
    // sysret hypercall -> switcher -> guest user, no hypervisor entry.
    co_await switcher.direct_switch_to_user(vcpu.switcher_state, vcpu.state);
  } else {
    co_await switcher.to_hypervisor(vcpu.switcher_state, vcpu.state, SwitchReason::kHypercall);
    co_await hypervisor_->sim().delay(hypervisor_->costs().pvm_exit_dispatch +
                                      hypervisor_->costs().pvm_syscall_emulation);
    co_await switcher.enter_guest(vcpu.switcher_state, vcpu.state, VirtRing::kVRing3);
  }
  vcpu.state.pcid = engine_->pcid_mapper().map(proc.pid(), /*kernel_ring=*/false).hw_pcid;
}

Task<void> PvmCpuBackend::privileged_op(Vcpu& vcpu, PrivOp op) {
  co_await hypervisor_->handle_privileged_op(vcpu.switcher_state, vcpu.state, op);
  if (op == PrivOp::kPortIo && l1_vm_ != nullptr) {
    // The VMM's device emulation itself runs inside a VM: operand fetches go
    // through shadow-paged memory (the paper's 12.9 us nested PIO row).
    co_await hypervisor_->sim().delay(hypervisor_->costs().pvm_nested_pio_extra);
  }
}

Task<void> PvmCpuBackend::exception_roundtrip(Vcpu& vcpu) {
  co_await hypervisor_->handle_exception_roundtrip(vcpu.switcher_state, vcpu.state);
}

Task<void> PvmCpuBackend::interrupt(Vcpu& vcpu) {
  if (l1_vm_ != nullptr && l0_ != nullptr) {
    // Nested: the hardware interrupt exits to L0 once (VMCS-mediated), which
    // injects it into the L1 VM; everything after stays inside L1.
    co_await l0_->inject_interrupt(*l1_vm_);
  }
  co_await hypervisor_->deliver_interrupt_to_guest(vcpu.switcher_state, vcpu.state);
}

Task<void> PvmCpuBackend::halt(Vcpu& vcpu) {
  // HLT via hypercall: the sleep/wakeup happens inside L1 without touching
  // the non-root/root boundary (§4.3, the fluidanimate win).
  co_await hypervisor_->handle_privileged_op(vcpu.switcher_state, vcpu.state, PrivOp::kHalt);
}

}  // namespace pvm
