// CPU virtualization via hardware VMX (the kvm-ept / kvm-spt rows).
//
// Bare-metal: privileged guest operations exit to L0 and return — the
// single-level round trips of Table 1. Nested: every L2 privileged operation
// is forwarded by L0 to the L1 hypervisor and resumed through L0 again,
// doubling the world switches (§2.1). Shadow-paging mode additionally traps
// guest CR3 writes, which is what makes kvm-spt syscalls so expensive under
// KPTI (Table 2).

#ifndef PVM_SRC_BACKENDS_VMX_CPU_BACKEND_H_
#define PVM_SRC_BACKENDS_VMX_CPU_BACKEND_H_

#include "src/guest/backend_iface.h"
#include "src/hv/host_hypervisor.h"

namespace pvm {

class VmxCpuBackend : public CpuBackend {
 public:
  struct Options {
    bool nested = false;     // L2 guest under an L1 KVM (kvm-ept NST)
    bool spt_mode = false;   // shadow paging: CR3 writes trap
    bool kpti = true;
  };

  // `vm` is the guest's direct L0 VM context in bare-metal mode, or the L1
  // instance's VM context in nested mode.
  VmxCpuBackend(HostHypervisor& l0, HostHypervisor::Vm& vm, const Options& options)
      : l0_(&l0), vm_(&vm), options_(options) {}

  std::string_view name() const override { return options_.nested ? "vmx-nested" : "vmx"; }

  Task<void> syscall_enter(Vcpu& vcpu, GuestProcess& proc) override;
  Task<void> syscall_exit(Vcpu& vcpu, GuestProcess& proc) override;
  Task<void> privileged_op(Vcpu& vcpu, PrivOp op) override;
  Task<void> exception_roundtrip(Vcpu& vcpu) override;
  Task<void> interrupt(Vcpu& vcpu) override;
  Task<void> halt(Vcpu& vcpu) override;

 private:
  Task<void> kpti_cr3_switch(Vcpu& vcpu);
  // One L2->L1->L2 service round trip mediated by L0 (nested mode).
  Task<void> nested_roundtrip(Vcpu& vcpu, ExitKind kind, std::uint64_t l1_handler_ns,
                              int vmcs12_accesses);

  HostHypervisor* l0_;
  HostHypervisor::Vm* vm_;
  Options options_;
};

}  // namespace pvm

#endif  // PVM_SRC_BACKENDS_VMX_CPU_BACKEND_H_
