#include "src/backends/pvm_memory_backend.h"

#include "src/obs/flight.h"
#include "src/obs/span.h"

namespace pvm {

PvmMemoryBackend::PvmMemoryBackend(PvmHypervisor& hypervisor, PvmMemoryEngine& engine,
                                   HostHypervisor* l0, HostHypervisor::Vm* l1_vm,
                                   std::uint16_t vpid, const std::string& container_name)
    : MemoryBackendBase(hypervisor.sim(), hypervisor.costs(), hypervisor.counters(),
                        hypervisor.trace(), "pvm:" + container_name, vpid),
      hypervisor_(&hypervisor),
      engine_(&engine),
      l0_(l0),
      l1_vm_(l1_vm) {}

void PvmMemoryBackend::on_process_created(GuestProcess& proc) {
  engine_->create_process(proc.pid(), &proc.gpt());
}

Task<void> PvmMemoryBackend::on_process_destroyed(Vcpu& vcpu, GuestProcess& proc) {
  engine_->destroy_process(proc.pid(), vcpu.tlb, vpid_);
  shadowed_.erase(proc.pid());
  co_return;
}

std::uint16_t PvmMemoryBackend::tag_pcid(GuestProcess& proc, bool user_mode) {
  if (!engine_->options().pcid_mapping) {
    return 0;
  }
  return engine_->pcid_mapper().map(proc.pid(), /*kernel_ring=*/!user_mode).hw_pcid;
}

Task<void> PvmMemoryBackend::access(Vcpu& vcpu, GuestProcess& proc, GuestKernel& kernel,
                                    std::uint64_t gva, AccessType access, bool user_mode) {
  Switcher& switcher = hypervisor_->switcher();
  const std::uint16_t pcid = tag_pcid(proc, user_mode);
  const VirtRing resume_ring = user_mode ? VirtRing::kVRing3 : VirtRing::kVRing0;

  // Operation span: opened at the first non-OK walk (a genuine fault) and
  // closed when the access finally succeeds, so the op covers the whole
  // resolution including the successful re-walk after the last retry.
  obs::SpanScope op;
  for (int attempt = 0; attempt < 24; ++attempt) {
    if (proc.oom_killed()) {
      co_return;  // OOM-killed mid-access; the faulting task is abandoned
    }
    if (tlb_try(vcpu, pcid, gva, access, user_mode)) {
      co_await sim_->delay(costs_->tlb_hit);
      co_await dirty_note(vcpu, proc, gva, access);
      co_return;
    }

    // Hardware walk: the active dual SPT, composed with the warm EPT01 when
    // nested (the L0 hypervisor sees an ordinary VM).
    PageTable& spt = engine_->spt(proc.pid(), /*kernel_ring=*/!user_mode);
    const TwoDimWalk walk =
        l1_vm_ != nullptr
            ? walk_two_dimensional(spt, l1_vm_->ept(), gva, access, user_mode)
            : walk_one_dimensional(spt, gva, access, user_mode);
    co_await sim_->delay(static_cast<std::uint64_t>(walk.total_loads) * costs_->walk_load);

    if (walk.outcome == TwoDimWalk::Outcome::kOk) {
      vcpu.tlb.insert(vpid_, pcid, page_number(gva),
                      Pte::make(walk.host_frame, walk.guest.pte.flags()));
      co_await sim_->delay(costs_->tlb_fill);
      co_await dirty_note(vcpu, proc, gva, access);
      co_return;
    }
    if (attempt == 0) {
      op = obs::SpanScope(sim_->spans(), obs::Phase::kOpPageFault, gva);
      if (flight::FlightRecorder* flight = sim_->flight()) {
        flight->record(flight::EventKind::kGuestFault, gva,
                       static_cast<std::uint64_t>(proc.pid()));
      }
    }
    if (walk.outcome == TwoDimWalk::Outcome::kEptViolation) {
      // Rare by the warm-L1 assumption; handled by L0 without PVM knowing.
      co_await l0_->ensure_backed(*l1_vm_, walk.violating_gpa);
      continue;
    }

    // §5 extension: with switcher-side classification on, the switcher
    // itself walks GPT2; genuine guest faults are injected straight into
    // the L2 kernel without entering the PVM hypervisor at all.
    if (hypervisor_->options().switcher_pf_classify && user_mode) {
      const WalkResult classify = proc.gpt().walk(gva, access, user_mode);
      co_await sim_->delay(costs_->switcher_classify +
                           static_cast<std::uint64_t>(classify.levels_walked) *
                               costs_->walk_load);
      if (!classify.present || !classify.permission_ok) {
        // Direct injection (one switch instead of exit+entry).
        co_await switcher.direct_switch_to_kernel(vcpu.switcher_state, vcpu.state);
        const PageFaultInfo fault{gva, access, user_mode, classify.present};
        co_await kernel.handle_page_fault(vcpu, proc, fault);

        // iret hypercall -> PVM (prefault) -> back to user, as in Fig. 9.
        counters_->add(Counter::kHypercall);
        co_await switcher.to_hypervisor(vcpu.switcher_state, vcpu.state,
                                        SwitchReason::kHypercall);
        co_await sim_->delay(costs_->pvm_exit_dispatch + costs_->pvm_simple_handler);
        co_await drain_sync_ring(vcpu);
        if (engine_->options().prefault) {
          if (const Pte* leaf = proc.gpt().find_pte(page_base(gva));
              leaf != nullptr && leaf->present()) {
            const bool filled = co_await engine_->fill_spt(proc.pid(), page_base(gva),
                                                           !user_mode, *leaf,
                                                           /*is_prefault=*/true);
            if (!filled) {
              co_await kernel.oom_kill_process(vcpu, proc);
              co_return;
            }
            counters_->add(Counter::kPrefaultSavedFault);
          }
        }
        co_await switcher.enter_guest(vcpu.switcher_state, vcpu.state, resume_ring);
        continue;
      }
      // Shadow fault: fall through to the hypervisor path below.
    }

    // Fault against the shadow table: one switcher world switch into PVM
    // (Fig. 9 ①-②), which classifies it against GPT2.
    co_await switcher.to_hypervisor(vcpu.switcher_state, vcpu.state, SwitchReason::kPageFault);
    co_await sim_->delay(costs_->pvm_exit_dispatch);
    co_await drain_sync_ring(vcpu);  // piggybacked collaborative sync (free)

    const WalkResult gpt_walk = proc.gpt().walk(gva, access, user_mode);
    co_await sim_->delay(static_cast<std::uint64_t>(gpt_walk.levels_walked) *
                         costs_->walk_load);

    if (gpt_walk.present && gpt_walk.permission_ok) {
      // Pure shadow miss (❶-❺): PVM fills SPT12 itself and returns straight
      // to the faulting context. If prefault did its job this path is rare.
      counters_->add(Counter::kShadowPageFault);
      const bool filled = co_await engine_->fill_spt(proc.pid(), page_base(gva), !user_mode,
                                                     gpt_walk.pte, /*is_prefault=*/false);
      if (!filled) {
        // Even the engine's reclaim pass found no backing: escalate to the
        // guest OOM killer rather than spin on an unserviceable fault.
        co_await kernel.oom_kill_process(vcpu, proc);
        co_return;
      }
      co_await switcher.enter_guest(vcpu.switcher_state, vcpu.state, resume_ring);
      continue;
    }

    // Genuine guest fault (①-⑩): inject the #PF into the guest kernel (③-⑤),
    // let it repair GPT2 (⑥, each store trapping via gpt_map), take the iret
    // hypercall (⑦), prefault SPT12 (⑧), and return to guest user (⑨-⑩).
    co_await sim_->delay(costs_->pvm_exception_inject);
    co_await switcher.enter_guest(vcpu.switcher_state, vcpu.state, VirtRing::kVRing0);

    const PageFaultInfo fault{gva, access, user_mode, gpt_walk.present};
    co_await kernel.handle_page_fault(vcpu, proc, fault);

    counters_->add(Counter::kHypercall);  // iret hypercall
    co_await switcher.to_hypervisor(vcpu.switcher_state, vcpu.state, SwitchReason::kHypercall);
    co_await sim_->delay(costs_->pvm_exit_dispatch + costs_->pvm_simple_handler);
    co_await drain_sync_ring(vcpu);  // piggybacked collaborative sync (free)

    if (engine_->options().prefault) {
      if (const Pte* leaf = proc.gpt().find_pte(page_base(gva));
          leaf != nullptr && leaf->present()) {
        const bool filled = co_await engine_->fill_spt(proc.pid(), page_base(gva), !user_mode,
                                                       *leaf, /*is_prefault=*/true);
        if (!filled) {
          co_await kernel.oom_kill_process(vcpu, proc);
          co_return;
        }
        counters_->add(Counter::kPrefaultSavedFault);
      }
    }
    co_await switcher.enter_guest(vcpu.switcher_state, vcpu.state, resume_ring);
  }
  fault_loop_error(gva);
}

Task<void> PvmMemoryBackend::queue_sync(Vcpu& vcpu, GuestProcess& proc, std::uint64_t gva,
                                        GptStoreKind kind) {
  sync_ring_.push_back(PendingSync{proc.pid(), gva, kind});
  co_await sim_->delay(costs_->guest_pte_store);  // the (now untrapped) store
  if (sync_ring_.size() >= kSyncRingCapacity) {
    // Ring full: one dedicated round trip drains the whole batch — the
    // amortization that replaces per-store write-protect traps.
    obs::SpanScope op(sim_->spans(), obs::Phase::kOpGptStore, gva);
    Switcher& switcher = hypervisor_->switcher();
    const VirtRing resume_ring = vcpu.state.virt_ring;
    counters_->add(Counter::kHypercall);
    co_await switcher.to_hypervisor(vcpu.switcher_state, vcpu.state, SwitchReason::kHypercall);
    co_await sim_->delay(costs_->pvm_exit_dispatch);
    co_await drain_sync_ring(vcpu);
    co_await switcher.enter_guest(vcpu.switcher_state, vcpu.state, resume_ring);
  }
}

Task<void> PvmMemoryBackend::drain_sync_ring(Vcpu& vcpu) {
  if (sync_ring_.empty()) {
    co_return;
  }
  std::vector<PendingSync> batch;
  batch.swap(sync_ring_);
  for (const PendingSync& record : batch) {
    // A record may outlive its process (fork child queued installs, then
    // exited): its shadow state is gone and there is nothing to synchronize.
    if (shadowed_.count(record.pid) == 0) {
      continue;
    }
    co_await engine_->emulate_gpt_store(record.pid, record.gva, record.kind, vcpu.tlb, vpid_,
                                        costs_->pvm_gpt_store_emulate / 2);
  }
}

Task<void> PvmMemoryBackend::trapped_store(Vcpu& vcpu, GuestProcess& proc, std::uint64_t gva,
                                           GptStoreKind kind) {
  obs::SpanScope op(sim_->spans(), obs::Phase::kOpGptStore, gva);
  Switcher& switcher = hypervisor_->switcher();
  const VirtRing resume_ring = vcpu.state.virt_ring;
  co_await switcher.to_hypervisor(vcpu.switcher_state, vcpu.state,
                                  SwitchReason::kGptWriteProtect);
  co_await sim_->delay(costs_->pvm_exit_dispatch);
  // Ordering: queued widening stores must apply before this narrowing one.
  co_await drain_sync_ring(vcpu);
  co_await engine_->emulate_gpt_store(proc.pid(), gva, kind, vcpu.tlb, vpid_,
                                      costs_->pvm_gpt_store_emulate);
  co_await switcher.enter_guest(vcpu.switcher_state, vcpu.state, resume_ring);
}

Task<void> PvmMemoryBackend::gpt_map(Vcpu& vcpu, GuestProcess& proc, std::uint64_t gva,
                                     std::uint64_t gpa_frame, PteFlags flags) {
  const MapResult result = proc.gpt().map(gva, gpa_frame, flags);
  if (result.replaced) {
    tlb_drop_page(vcpu, proc, gva);
  }
  if (!shadowed(proc)) {
    co_await sim_->delay(static_cast<std::uint64_t>(result.entries_written) *
                         costs_->guest_pte_store);
    co_return;
  }
  if (collaborative()) {
    // §5 extension: widening stores don't trap — they queue for batched
    // synchronization (a missing SPT entry only means a later, fillable
    // fault, so deferral is safe).
    for (int i = 0; i < result.entries_written; ++i) {
      const bool leaf = i == result.entries_written - 1;
      co_await queue_sync(vcpu, proc, gva,
                          leaf ? GptStoreKind::kInstall : GptStoreKind::kTableAlloc);
    }
    co_return;
  }
  // GPT2 is read-only to the guest: every store needs PVM's assistance —
  // 2 world switches per touched level (the "2n" of §3.3.2).
  for (int i = 0; i < result.entries_written; ++i) {
    const bool leaf = i == result.entries_written - 1;
    co_await trapped_store(vcpu, proc, gva,
                           leaf ? GptStoreKind::kInstall : GptStoreKind::kTableAlloc);
  }
}

Task<void> PvmMemoryBackend::gpt_unmap(Vcpu& vcpu, GuestProcess& proc, std::uint64_t gva) {
  proc.gpt().unmap(gva);
  tlb_drop_page(vcpu, proc, gva);
  if (!shadowed(proc)) {
    co_await sim_->delay(costs_->guest_pte_store);
    co_return;
  }
  co_await trapped_store(vcpu, proc, gva, GptStoreKind::kClear);
}

Task<void> PvmMemoryBackend::gpt_protect(Vcpu& vcpu, GuestProcess& proc, std::uint64_t gva,
                                         bool writable, bool mark_cow) {
  proc.gpt().update_pte(gva, [&](Pte& pte) {
    pte.set_writable(writable);
    pte.set_cow(mark_cow);
  });
  tlb_drop_page(vcpu, proc, gva);
  if (!shadowed(proc)) {
    co_await sim_->delay(costs_->guest_pte_store);
    co_return;
  }
  if (collaborative() && writable) {
    // Widening: batched like installs.
    co_await queue_sync(vcpu, proc, gva, GptStoreKind::kMakeWritable);
    co_return;
  }
  co_await trapped_store(vcpu, proc, gva,
                         writable ? GptStoreKind::kMakeWritable : GptStoreKind::kWriteProtect);
}

Task<void> PvmMemoryBackend::activate_process(Vcpu& vcpu, GuestProcess& proc,
                                              bool kernel_ring) {
  shadowed_.insert(proc.pid());
  // CR3 writes are paravirtualized: one hypercall round trip through the
  // switcher, then PVM switches the active shadow root.
  co_await hypervisor_->handle_privileged_op(vcpu.switcher_state, vcpu.state,
                                             PrivOp::kWriteCr3);
  vcpu.state.pcid = co_await engine_->activate(proc.pid(), kernel_ring, vcpu.tlb, vpid_);
  vcpu.state.cr3 = engine_->spt(proc.pid(), kernel_ring).root_frame();
}

}  // namespace pvm
