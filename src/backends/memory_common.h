// Shared plumbing for the memory-virtualization backends.

#ifndef PVM_SRC_BACKENDS_MEMORY_COMMON_H_
#define PVM_SRC_BACKENDS_MEMORY_COMMON_H_

#include <cstdint>
#include <stdexcept>
#include <string>

#include "src/arch/cost_model.h"
#include "src/guest/backend_iface.h"
#include "src/guest/guest_kernel.h"
#include "src/hv/dirty_tracker.h"
#include "src/metrics/counters.h"
#include "src/mmu/two_dim_walk.h"
#include "src/obs/span.h"
#include "src/sim/simulation.h"
#include "src/trace/trace.h"

namespace pvm {

class MemoryBackendBase : public MemoryBackend {
 public:
  void on_process_created(GuestProcess& proc) override { (void)proc; }
  Task<void> on_process_destroyed(Vcpu& vcpu, GuestProcess& proc) override {
    (void)vcpu;
    (void)proc;
    co_return;
  }

  // The VPID tagging this backend's TLB entries. Fault-injection harnesses
  // (src/check) need it to drive engine zaps from outside the backend.
  std::uint16_t vpid() const { return vpid_; }

  // Attaches the VM's migration dirty tracker (platform wiring). Disarmed
  // or detached, every access pays exactly one branch.
  void set_dirty_tracker(DirtyTracker* tracker) { dirty_ = tracker; }

 protected:
  MemoryBackendBase(Simulation& sim, const CostModel& costs, CounterSet& counters,
                    TraceLog& trace, std::string label, std::uint16_t vpid)
      : sim_(&sim),
        costs_(&costs),
        counters_(&counters),
        trace_(&trace),
        label_(std::move(label)),
        vpid_(vpid) {}

  // TLB tags for EPT-style schemes where the guest drives PCIDs itself.
  static std::uint16_t guest_pcid(const GuestProcess& proc, bool user_mode, bool kpti) {
    if (!kpti) {
      return proc.user_pcid();
    }
    return user_mode ? proc.user_pcid() : proc.kernel_pcid();
  }

  // Probes the TLB; on a permitted hit charges the hit cost and returns
  // true. A hit with insufficient permission drops the entry (the hardware
  // re-walks on permission faults).
  bool tlb_try(Vcpu& vcpu, std::uint16_t pcid, std::uint64_t gva, AccessType access,
               bool user_mode) {
    const auto hit = vcpu.tlb.lookup(vpid_, pcid, page_number(gva));
    if (!hit.hit) {
      counters_->add(Counter::kTlbMiss);
      return false;
    }
    const bool ok = !(access == AccessType::kWrite && !hit.writable) && !(user_mode && !hit.user);
    if (!ok) {
      vcpu.tlb.flush_page(vpid_, pcid, page_number(gva));
      counters_->add(Counter::kTlbMiss);
      return false;
    }
    counters_->add(Counter::kTlbHit);
    return true;
  }

  // Drops every possible TLB alias of a guest page (user + kernel tags).
  void tlb_drop_page(Vcpu& vcpu, const GuestProcess& proc, std::uint64_t gva) {
    vcpu.tlb.flush_page(vpid_, proc.user_pcid(), page_number(gva));
    vcpu.tlb.flush_page(vpid_, proc.kernel_pcid(), page_number(gva));
    vcpu.tlb.flush_page(vpid_, 0, page_number(gva));
  }

  // In-guest #PF delivery + iret: ring crossings inside the guest, no exit.
  // This is the EPT-scheme fast path the paper's fork/exec rows highlight.
  Task<void> guest_local_fault_entry() {
    co_await sim_->delay(costs_->ring_crossing + costs_->guest_exception_delivery);
  }
  Task<void> guest_local_fault_return() { co_await sim_->delay(costs_->ring_crossing); }

  [[noreturn]] void fault_loop_error(std::uint64_t gva) const {
    throw std::logic_error(label_ + ": access at gva " + std::to_string(gva) +
                           " did not converge (fault-handling bug)");
  }

  // What a dirty-tracking write-protect fault (or PML flush exit) costs on
  // this backend: one exit round trip through its own exit machinery. The
  // VMX default fits the EPT-family and kvm-spt backends; PVM backends
  // override with the (cheaper) switcher round trip — the same asymmetry
  // the paper's Table 1 measures for every other exit.
  virtual std::uint64_t dirty_exit_roundtrip_ns() const {
    return costs_->vmx_roundtrip() + costs_->l0_exit_dispatch;
  }

  // Runs at every *successful* guest store (both the TLB-hit and the
  // walk-OK exits of access()): records the page against the migration
  // dirty tracker and charges whatever the active protocol makes the store
  // cost. Reads and untracked writes fall through on the first branch.
  Task<void> dirty_note(const Vcpu& vcpu, const GuestProcess& proc, std::uint64_t gva,
                        AccessType access) {
    if (dirty_ == nullptr || access != AccessType::kWrite || !dirty_->armed()) {
      co_return;
    }
    switch (dirty_->note_store(vcpu.id, dirty_page_key(proc.pid(), gva))) {
      case DirtyStoreOutcome::kClean:
        co_return;
      case DirtyStoreOutcome::kWpFault: {
        counters_->add(Counter::kDirtyWpFault);
        obs::SpanScope span(sim_->spans(), obs::Phase::kDirtyTrack, gva);
        co_await sim_->delay(dirty_exit_roundtrip_ns() + costs_->dirty_wp_unprotect);
        co_return;
      }
      case DirtyStoreOutcome::kPmlAppend: {
        counters_->add(Counter::kDirtyPmlLog);
        obs::SpanScope span(sim_->spans(), obs::Phase::kDirtyTrack, gva);
        co_await sim_->delay(costs_->pml_log_append);
        co_return;
      }
      case DirtyStoreOutcome::kPmlFlush: {
        counters_->add(Counter::kDirtyPmlLog);
        counters_->add(Counter::kDirtyPmlFlush);
        obs::SpanScope span(sim_->spans(), obs::Phase::kDirtyTrack, gva);
        co_await sim_->delay(dirty_exit_roundtrip_ns() + costs_->pml_flush_drain);
        co_return;
      }
    }
  }

  Simulation* sim_;
  const CostModel* costs_;
  CounterSet* counters_;
  TraceLog* trace_;
  std::string label_;
  std::uint16_t vpid_;
  DirtyTracker* dirty_ = nullptr;
};

}  // namespace pvm

#endif  // PVM_SRC_BACKENDS_MEMORY_COMMON_H_
