#include "src/backends/vmx_cpu_backend.h"

namespace pvm {

namespace {

ExitKind op_exit_kind(PrivOp op) {
  switch (op) {
    case PrivOp::kHypercallNop:
      return ExitKind::kHypercall;
    case PrivOp::kException:
      return ExitKind::kException;
    case PrivOp::kMsrRead:
    case PrivOp::kMsrWrite:
      return ExitKind::kMsrAccess;
    case PrivOp::kCpuid:
      return ExitKind::kCpuid;
    case PrivOp::kPortIo:
      return ExitKind::kPortIo;
    case PrivOp::kIoKick:
      return ExitKind::kIoKick;
    case PrivOp::kHalt:
      return ExitKind::kHalt;
    case PrivOp::kWriteCr3:
    case PrivOp::kInvlpg:
    case PrivOp::kIret:
      return ExitKind::kCr3Write;
  }
  return ExitKind::kHypercall;
}

}  // namespace

Task<void> VmxCpuBackend::kpti_cr3_switch(Vcpu& vcpu) {
  const CostModel& costs = l0_->costs();
  if (options_.spt_mode) {
    // Shadow paging: CR3 is virtualized, so the guest's KPTI table swap is a
    // privileged write that traps to the hypervisor, which switches the
    // active shadow table. Nested, the trap must be forwarded to L1.
    if (options_.nested) {
      co_await nested_roundtrip(vcpu, ExitKind::kCr3Write, costs.l0_spt_cr3_work, 6);
    } else {
      co_await l0_->exit_roundtrip(*vm_, ExitKind::kCr3Write);
    }
    co_await l0_->sim().delay(costs.cr3_write + costs.l0_spt_cr3_work);
  } else {
    // EPT: the guest owns CR3; the swap costs only the instruction.
    co_await l0_->sim().delay(costs.kpti_switch);
  }
}

Task<void> VmxCpuBackend::syscall_enter(Vcpu& vcpu, GuestProcess& proc) {
  // syscall instruction: guest user -> guest kernel, no VM exit.
  co_await l0_->sim().delay(l0_->costs().ring_crossing);
  if (options_.kpti) {
    co_await kpti_cr3_switch(vcpu);
  }
  (void)proc;
}

Task<void> VmxCpuBackend::syscall_exit(Vcpu& vcpu, GuestProcess& proc) {
  if (options_.kpti) {
    co_await kpti_cr3_switch(vcpu);
  }
  co_await l0_->sim().delay(l0_->costs().ring_crossing);
  (void)proc;
}

Task<void> VmxCpuBackend::nested_roundtrip(Vcpu& vcpu, ExitKind kind,
                                           std::uint64_t l1_handler_ns, int vmcs12_accesses) {
  co_await l0_->nested_forward_exit_to_l1(*vm_, vcpu.nested, kind);
  co_await l0_->l1_vmcs12_access(*vm_, vcpu.nested, vmcs12_accesses);
  co_await l0_->sim().delay(l1_handler_ns);
  co_await l0_->nested_resume_l2(*vm_, vcpu.nested);
}

Task<void> VmxCpuBackend::privileged_op(Vcpu& vcpu, PrivOp op) {
  const CostModel& costs = l0_->costs();
  l0_->counters().add(Counter::kPrivilegedInstructionTrap);
  switch (op) {
    case PrivOp::kMsrRead:
      l0_->counters().add(Counter::kMsrAccess);
      break;
    case PrivOp::kCpuid:
      l0_->counters().add(Counter::kCpuid);
      break;
    case PrivOp::kPortIo:
      l0_->counters().add(Counter::kPortIo);
      break;
    case PrivOp::kHalt:
      l0_->counters().add(Counter::kHalt);
      break;
    case PrivOp::kHypercallNop:
      l0_->counters().add(Counter::kHypercall);
      break;
    default:
      break;
  }

  if (!options_.nested) {
    if (op == PrivOp::kMsrRead) {
      // KVM lets the guest read this MSR directly in non-root mode via the
      // MSR bitmap — hence kvm's Table 1 MSR row costing only the (slow)
      // PMU register access itself.
      co_await l0_->sim().delay(costs.msr_hardware_access);
      co_return;
    }
    co_await l0_->exit_roundtrip(*vm_, op_exit_kind(op));
    co_return;
  }

  // Nested: L0 forwards the exit to L1, whose KVM handles it, then L0
  // emulates L1's VMRESUME. PIO additionally bounces through the L1 VMM with
  // extra decode round trips.
  std::uint64_t l1_handler = costs.l0_simple_handler;
  int accesses = 8;
  if (op == PrivOp::kMsrRead || op == PrivOp::kMsrWrite) {
    l1_handler = costs.l0_msr_handler + costs.msr_hardware_access;
  } else if (op == PrivOp::kPortIo) {
    l1_handler = costs.l0_pio_handler;
    accesses = 24;
  } else if (op == PrivOp::kIoKick) {
    l1_handler = costs.io_kick_handler;
  } else if (op == PrivOp::kHalt) {
    l1_handler = costs.apic_virtualization;
  }
  co_await nested_roundtrip(vcpu, op_exit_kind(op), l1_handler, accesses);
  if (op == PrivOp::kPortIo) {
    // The L1 VMM's I/O-instruction emulation touches L2 state repeatedly,
    // each touch another forwarded exit (the paper's 29 us PIO row).
    co_await nested_roundtrip(vcpu, op_exit_kind(op), costs.l0_pio_handler, 12);
    co_await nested_roundtrip(vcpu, op_exit_kind(op), costs.l0_exit_dispatch, 8);
  }
}

Task<void> VmxCpuBackend::exception_roundtrip(Vcpu& vcpu) {
  const CostModel& costs = l0_->costs();
  if (!options_.nested) {
    // Trapped exception: exit, hypervisor inspects and reflects it back into
    // the guest (the injection cost is the exit handler's), guest handler
    // runs, iret (no exit).
    co_await l0_->exit_roundtrip(*vm_, ExitKind::kException);
    co_await l0_->sim().delay(costs.guest_syscall_body_getpid);
    co_return;
  }
  co_await nested_roundtrip(vcpu, ExitKind::kException,
                            costs.l0_exception_inject + costs.guest_syscall_body_getpid, 12);
}

Task<void> VmxCpuBackend::interrupt(Vcpu& vcpu) {
  if (!options_.nested) {
    co_await l0_->inject_interrupt(*vm_);
    co_return;
  }
  // External interrupt while L2 runs: exit to L0, inject into L1, L1's KVM
  // converts it and injects into L2 through another emulated entry.
  l0_->counters().add(Counter::kInterruptInjected);
  co_await nested_roundtrip(vcpu, ExitKind::kInterrupt, l0_->costs().apic_virtualization, 10);
}

Task<void> VmxCpuBackend::halt(Vcpu& vcpu) {
  co_await privileged_op(vcpu, PrivOp::kHalt);
}

}  // namespace pvm
