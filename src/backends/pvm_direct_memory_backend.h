// PVM direct paging (paper §5: "implementing a Xen-like 'direct paging'
// solution on KVM by mapping the GPA->HPA relationship to the guest").
//
// The guest's page tables hold L1 machine frames directly, so there are no
// shadow tables at all: the hardware walks the guest table (composed with
// the warm EPT01 when nested) and no second fault or prefault ever happens.
// What remains is validation — every guest page-table store is a hypercall
// that PVM checks (the Xen PV mmu_update contract) — and fault delivery
// through the switcher. A fresh-page fault costs 2n+2 world switches.
//
// Implemented as an experimental deployment (DeployMode::kPvmDirectNst);
// not part of the paper's evaluation.

#ifndef PVM_SRC_BACKENDS_PVM_DIRECT_MEMORY_BACKEND_H_
#define PVM_SRC_BACKENDS_PVM_DIRECT_MEMORY_BACKEND_H_

#include <unordered_set>

#include "src/backends/memory_common.h"
#include "src/core/pvm_hypervisor.h"
#include "src/hv/host_hypervisor.h"

namespace pvm {

class PvmDirectMemoryBackend : public MemoryBackendBase {
 public:
  // The container's guest-physical space *is* the L1 space in this mode
  // (process tables and data frames are allocated from l1 frames directly).
  PvmDirectMemoryBackend(PvmHypervisor& hypervisor, HostHypervisor* l0,
                         HostHypervisor::Vm* l1_vm, std::uint16_t vpid,
                         const std::string& container_name);

  std::string_view name() const override { return "pvm-direct"; }

  Task<void> access(Vcpu& vcpu, GuestProcess& proc, GuestKernel& kernel, std::uint64_t gva,
                    AccessType access, bool user_mode) override;
  Task<void> gpt_map(Vcpu& vcpu, GuestProcess& proc, std::uint64_t gva, std::uint64_t gpa_frame,
                     PteFlags flags) override;
  Task<void> gpt_unmap(Vcpu& vcpu, GuestProcess& proc, std::uint64_t gva) override;
  Task<void> gpt_protect(Vcpu& vcpu, GuestProcess& proc, std::uint64_t gva, bool writable,
                         bool mark_cow) override;
  Task<void> activate_process(Vcpu& vcpu, GuestProcess& proc, bool kernel_ring) override;

 protected:
  // Dirty-tracking faults resolve through the switcher, as on pvm-on-ept.
  std::uint64_t dirty_exit_roundtrip_ns() const override {
    return 2 * costs_->switcher_switch() + costs_->pvm_exit_dispatch;
  }

 private:
  bool validated(const GuestProcess& proc) const { return validated_.count(proc.pid()) > 0; }
  // One mmu_update-style validation hypercall round trip.
  Task<void> validate_store(Vcpu& vcpu, int stores);

  PvmHypervisor* hypervisor_;
  HostHypervisor* l0_;
  HostHypervisor::Vm* l1_vm_;
  std::unordered_set<std::uint64_t> validated_;
};

}  // namespace pvm

#endif  // PVM_SRC_BACKENDS_PVM_DIRECT_MEMORY_BACKEND_H_
