#include "src/backends/spt_on_ept_memory_backend.h"

#include "src/obs/flight.h"
#include "src/obs/span.h"

namespace pvm {

SptOnEptMemoryBackend::SptOnEptMemoryBackend(HostHypervisor& l0, HostHypervisor::Vm& l1_vm,
                                             std::uint16_t l2_vpid,
                                             const std::string& container_name, bool kpti)
    : MemoryBackendBase(l0.sim(), l0.costs(), l0.counters(), l0.trace(),
                        "spt-on-ept:" + container_name, l2_vpid),
      l0_(&l0),
      l1_vm_(&l1_vm),
      kpti_(kpti) {
  PvmMemoryEngine::Options options;
  options.prefault = false;
  options.pcid_mapping = false;
  options.fine_grained_locks = false;
  options.dual_spt = kpti;
  engine_ = std::make_unique<PvmMemoryEngine>(l0.sim(), l0.costs(), l0.counters(), l0.trace(),
                                              l1_vm.gpa_frames(),
                                              "spt-on-ept:" + container_name, options);
}

void SptOnEptMemoryBackend::on_process_created(GuestProcess& proc) {
  engine_->create_process(proc.pid(), &proc.gpt());
}

Task<void> SptOnEptMemoryBackend::on_process_destroyed(Vcpu& vcpu, GuestProcess& proc) {
  engine_->destroy_process(proc.pid(), vcpu.tlb, vpid_);
  shadowed_.erase(proc.pid());
  co_return;
}

Task<void> SptOnEptMemoryBackend::access(Vcpu& vcpu, GuestProcess& proc, GuestKernel& kernel,
                                         std::uint64_t gva, AccessType access, bool user_mode) {
  const std::uint16_t pcid = 0;  // no PCID awareness
  obs::SpanScope op;
  for (int attempt = 0; attempt < 24; ++attempt) {
    if (proc.oom_killed()) {
      co_return;  // OOM-killed mid-access; the faulting task is abandoned
    }
    if (tlb_try(vcpu, pcid, gva, access, user_mode)) {
      co_await sim_->delay(costs_->tlb_hit);
      co_await dirty_note(vcpu, proc, gva, access);
      co_return;
    }

    // Hardware uses SPT12 (GVA_L2 -> GPA_L1) plus the warm EPT01.
    PageTable& spt = engine_->spt(proc.pid(), /*kernel_ring=*/!user_mode);
    const TwoDimWalk walk = walk_two_dimensional(spt, l1_vm_->ept(), gva, access, user_mode);
    co_await sim_->delay(static_cast<std::uint64_t>(walk.total_loads) * costs_->walk_load);

    if (walk.outcome == TwoDimWalk::Outcome::kOk) {
      vcpu.tlb.insert(vpid_, pcid, page_number(gva),
                      Pte::make(walk.host_frame, walk.guest.pte.flags()));
      co_await sim_->delay(costs_->tlb_fill);
      co_await dirty_note(vcpu, proc, gva, access);
      co_return;
    }
    if (attempt == 0) {
      op = obs::SpanScope(sim_->spans(), obs::Phase::kOpPageFault, gva);
      if (flight::FlightRecorder* flight = sim_->flight()) {
        flight->record(flight::EventKind::kGuestFault, gva,
                       static_cast<std::uint64_t>(proc.pid()));
      }
    }
    if (walk.outcome == TwoDimWalk::Outcome::kEptViolation) {
      co_await l0_->ensure_backed(*l1_vm_, walk.violating_gpa);
      continue;
    }

    // Fault against SPT12: exits to L0, which forwards it to L1 (➀-➂).
    co_await l0_->nested_forward_exit_to_l1(*l1_vm_, vcpu.nested, ExitKind::kException);

    const WalkResult gpt_walk = proc.gpt().walk(gva, access, user_mode);
    co_await sim_->delay(static_cast<std::uint64_t>(gpt_walk.levels_walked) *
                         costs_->walk_load);
    const bool guest_has_translation = gpt_walk.present && gpt_walk.permission_ok;

    if (guest_has_translation) {
      // Second phase (➊-➐ of Fig. 3a): L1 repairs SPT12 and resumes L2
      // through L0, returning directly to L2 user.
      counters_->add(Counter::kShadowPageFault);
      {
        ScopedResource lock = co_await engine_->locks().mmu_lock().scoped();
        co_await sim_->delay(costs_->l0_ept_fill);
      }
      const bool filled = co_await engine_->fill_spt(proc.pid(), page_base(gva), !user_mode,
                                                     gpt_walk.pte, /*is_prefault=*/false);
      co_await l0_->l1_vmcs12_access(*l1_vm_, vcpu.nested, 8);
      co_await l0_->nested_resume_l2(*l1_vm_, vcpu.nested);
      if (!filled) {
        co_await kernel.oom_kill_process(vcpu, proc);
        co_return;
      }
      continue;
    }

    // First phase (➀-➈): L1 injects the #PF into L2 (➃) and resumes it via
    // L0 (➄-➆); the L2 kernel repairs GPT2 (⑧, each store a trapped round
    // trip) and irets (➈).
    co_await sim_->delay(costs_->l0_exception_inject);
    co_await l0_->l1_vmcs12_access(*l1_vm_, vcpu.nested, 6);
    co_await l0_->nested_resume_l2(*l1_vm_, vcpu.nested);
    const PageFaultInfo fault{gva, access, user_mode, gpt_walk.present};
    co_await kernel.handle_page_fault(vcpu, proc, fault);
    co_await guest_local_fault_return();
  }
  fault_loop_error(gva);
}

Task<void> SptOnEptMemoryBackend::trapped_store(Vcpu& vcpu, GuestProcess& proc,
                                                std::uint64_t gva, GptStoreKind kind) {
  // L2's store to its write-protected GPT exits to L0, is forwarded to L1,
  // emulated there, and L2 resumes through another emulated entry: 2 exits
  // to L0 and 4 world switches per store.
  co_await l0_->nested_forward_exit_to_l1(*l1_vm_, vcpu.nested, ExitKind::kException);
  co_await engine_->emulate_gpt_store(proc.pid(), gva, kind, vcpu.tlb, vpid_,
                                      costs_->l0_ept_emulate_write);
  co_await l0_->l1_vmcs12_access(*l1_vm_, vcpu.nested, 6);
  co_await l0_->nested_resume_l2(*l1_vm_, vcpu.nested);
}

Task<void> SptOnEptMemoryBackend::gpt_map(Vcpu& vcpu, GuestProcess& proc, std::uint64_t gva,
                                          std::uint64_t gpa_frame, PteFlags flags) {
  const MapResult result = proc.gpt().map(gva, gpa_frame, flags);
  if (result.replaced) {
    tlb_drop_page(vcpu, proc, gva);
  }
  if (!shadowed(proc)) {
    co_await sim_->delay(static_cast<std::uint64_t>(result.entries_written) *
                         costs_->guest_pte_store);
    co_return;
  }
  for (int i = 0; i < result.entries_written; ++i) {
    const bool leaf = i == result.entries_written - 1;
    co_await trapped_store(vcpu, proc, gva,
                           leaf ? GptStoreKind::kInstall : GptStoreKind::kTableAlloc);
  }
}

Task<void> SptOnEptMemoryBackend::gpt_unmap(Vcpu& vcpu, GuestProcess& proc, std::uint64_t gva) {
  proc.gpt().unmap(gva);
  tlb_drop_page(vcpu, proc, gva);
  if (!shadowed(proc)) {
    co_await sim_->delay(costs_->guest_pte_store);
    co_return;
  }
  co_await trapped_store(vcpu, proc, gva, GptStoreKind::kClear);
}

Task<void> SptOnEptMemoryBackend::gpt_protect(Vcpu& vcpu, GuestProcess& proc, std::uint64_t gva,
                                              bool writable, bool mark_cow) {
  proc.gpt().update_pte(gva, [&](Pte& pte) {
    pte.set_writable(writable);
    pte.set_cow(mark_cow);
  });
  tlb_drop_page(vcpu, proc, gva);
  if (!shadowed(proc)) {
    co_await sim_->delay(costs_->guest_pte_store);
    co_return;
  }
  co_await trapped_store(vcpu, proc, gva,
                         writable ? GptStoreKind::kMakeWritable : GptStoreKind::kWriteProtect);
}

Task<void> SptOnEptMemoryBackend::activate_process(Vcpu& vcpu, GuestProcess& proc,
                                                   bool kernel_ring) {
  shadowed_.insert(proc.pid());
  // Trapped CR3 write, serviced by L1 through L0.
  co_await l0_->nested_forward_exit_to_l1(*l1_vm_, vcpu.nested, ExitKind::kCr3Write);
  vcpu.state.pcid = co_await engine_->activate(proc.pid(), kernel_ring, vcpu.tlb, vpid_);
  vcpu.state.cr3 = engine_->spt(proc.pid(), kernel_ring).root_frame();
  co_await l0_->l1_vmcs12_access(*l1_vm_, vcpu.nested, 6);
  co_await l0_->nested_resume_l2(*l1_vm_, vcpu.nested);
}

}  // namespace pvm
