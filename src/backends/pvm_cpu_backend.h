// CPU virtualization via the PVM switcher (the pvm rows of Tables 1/2).
//
// All L2 privileged operations trap only to the L1 PVM hypervisor through the
// switcher — never to L0. Syscalls take the direct-switch path when enabled
// (Fig. 8): user -> switcher -> kernel and back via the sysret hypercall,
// without entering the hypervisor at all. Interrupts need exactly one L0
// exit in nested mode (the hardware injection into the L1 VM, §3.3.3);
// running bare-metal, PVM *is* the host hypervisor and takes them directly.

#ifndef PVM_SRC_BACKENDS_PVM_CPU_BACKEND_H_
#define PVM_SRC_BACKENDS_PVM_CPU_BACKEND_H_

#include "src/core/memory_engine.h"
#include "src/core/pvm_hypervisor.h"
#include "src/guest/backend_iface.h"
#include "src/hv/host_hypervisor.h"

namespace pvm {

class PvmCpuBackend : public CpuBackend {
 public:
  // `l1_vm` is the hosting L0 VM context in nested mode, nullptr bare-metal.
  // `engine` provides the PCID mapping consulted on world switches.
  PvmCpuBackend(PvmHypervisor& hypervisor, PvmMemoryEngine& engine, HostHypervisor* l0,
                HostHypervisor::Vm* l1_vm, std::uint16_t vpid)
      : hypervisor_(&hypervisor), engine_(&engine), l0_(l0), l1_vm_(l1_vm), vpid_(vpid) {}

  std::string_view name() const override { return l1_vm_ ? "pvm-nested" : "pvm-bm"; }

  Task<void> syscall_enter(Vcpu& vcpu, GuestProcess& proc) override;
  Task<void> syscall_exit(Vcpu& vcpu, GuestProcess& proc) override;
  Task<void> privileged_op(Vcpu& vcpu, PrivOp op) override;
  Task<void> exception_roundtrip(Vcpu& vcpu) override;
  Task<void> interrupt(Vcpu& vcpu) override;
  Task<void> halt(Vcpu& vcpu) override;

 private:
  // TLB policy on a guest user/kernel transition: nothing with PCID mapping
  // on; a full guest flush without it.
  void world_switch_tlb_policy(Vcpu& vcpu);

  PvmHypervisor* hypervisor_;
  PvmMemoryEngine* engine_;
  HostHypervisor* l0_;
  HostHypervisor::Vm* l1_vm_;
  std::uint16_t vpid_;
};

}  // namespace pvm

#endif  // PVM_SRC_BACKENDS_PVM_CPU_BACKEND_H_
