// Nested-cloud comparison: deploy N secure containers on one leased L1
// instance under kvm-ept (EPT-on-EPT) and under PVM, run the same
// memory-heavy workload in each, and compare completion times plus the L0
// hypervisor's involvement — the paper's core deployment story in one run.
//
// Usage: nested_cloud [containers]   (default 8)

#include <cstdio>
#include <cstdlib>

#include "src/hv/migration.h"
#include "src/workloads/memstress.h"
#include "src/workloads/runner.h"

using namespace pvm;

namespace {

struct Outcome {
  double mean_seconds;
  unsigned long long l0_exits;
  unsigned long long world_switches;
  double l0_lock_wait_ms;
  MigrationResult migration;
};

Outcome run_mode(DeployMode mode, int containers) {
  PlatformConfig config;
  config.mode = mode;
  VirtualPlatform platform(config);

  MemStressParams params;
  params.total_bytes = 16ull << 20;  // 16 MiB per container

  const ContainersResult result = run_containers(
      platform, containers,
      [&](int, SecureContainer& c, Vcpu& vcpu, GuestProcess& proc) -> Task<void> {
        return memstress_process(c, vcpu, proc, params);
      });

  Outcome outcome;
  outcome.mean_seconds = result.mean_seconds();
  outcome.l0_exits = platform.counters().get(Counter::kL0Exit);
  outcome.world_switches = platform.counters().get(Counter::kWorldSwitch);
  outcome.l0_lock_wait_ms =
      platform.l1_vm() != nullptr
          ? static_cast<double>(platform.l1_vm()->mmu_lock().total_wait_ns()) / 1e6
          : 0.0;

  // §2.3's management story: can the cloud still live-migrate the L1
  // instance while the containers run on it?
  MigrationEngine engine(platform.l0());
  platform.sim().spawn([](MigrationEngine& e, HostHypervisor::Vm& vm,
                          MigrationResult* out) -> Task<void> {
    *out = co_await e.migrate(vm);
  }(engine, *platform.l1_vm(), &outcome.migration));
  platform.sim().run();
  return outcome;
}

}  // namespace

int main(int argc, char** argv) {
  const int containers = argc > 1 ? std::atoi(argv[1]) : 8;

  std::printf("Deploying %d secure containers on one leased L1 instance,\n", containers);
  std::printf("16 MiB of fresh memory touched per container.\n\n");

  const Outcome kvm = run_mode(DeployMode::kKvmEptNst, containers);
  const Outcome pvm_result = run_mode(DeployMode::kPvmNst, containers);

  std::printf("%-22s %14s %14s\n", "", "kvm-ept (NST)", "pvm (NST)");
  std::printf("%-22s %14.4f %14.4f\n", "mean time (s)", kvm.mean_seconds,
              pvm_result.mean_seconds);
  std::printf("%-22s %14llu %14llu\n", "exits to L0", kvm.l0_exits, pvm_result.l0_exits);
  std::printf("%-22s %14llu %14llu\n", "world switches", kvm.world_switches,
              pvm_result.world_switches);
  std::printf("%-22s %14.2f %14.2f\n", "L0 mmu_lock wait (ms)", kvm.l0_lock_wait_ms,
              pvm_result.l0_lock_wait_ms);
  std::printf("%-22s %14s %14s\n", "L1 live migration",
              kvm.migration.succeeded ? "ok" : "REFUSED",
              pvm_result.migration.succeeded ? "ok" : "REFUSED");
  if (pvm_result.migration.succeeded) {
    std::printf("%-22s %14s %12.1f ms\n", "  (pvm downtime)", "",
                static_cast<double>(pvm_result.migration.downtime) / 1e6);
  }
  std::printf("\nspeedup from PVM: %.2fx, with %.0fx fewer L0 exits\n",
              kvm.mean_seconds / pvm_result.mean_seconds,
              pvm_result.l0_exits > 0
                  ? static_cast<double>(kvm.l0_exits) / static_cast<double>(pvm_result.l0_exits)
                  : 0.0);
  std::printf("PVM handles every L2 page fault inside the L1 instance; the only\n");
  std::printf("L0 exits left are interrupt injections and the I/O path.\n");
  return 0;
}
