// Secure-container lifecycle demo: boots a container, walks through the
// process-management surface (fork with COW, exec, signals, file I/O), and
// prints a stage-by-stage account of what each operation cost and which
// virtualization events it generated — on the deployment of your choice.
//
// Usage: secure_container_demo [kvm-ept-bm|kvm-spt-bm|pvm-bm|kvm-ept-nst|pvm-nst]

#include <cstdio>
#include <cstring>
#include <string>

#include "src/backends/platform.h"

using namespace pvm;

namespace {

DeployMode parse_mode(int argc, char** argv) {
  if (argc < 2) {
    return DeployMode::kPvmNst;
  }
  const std::string arg = argv[1];
  if (arg == "kvm-ept-bm") return DeployMode::kKvmEptBm;
  if (arg == "kvm-spt-bm") return DeployMode::kKvmSptBm;
  if (arg == "pvm-bm") return DeployMode::kPvmBm;
  if (arg == "kvm-ept-nst") return DeployMode::kKvmEptNst;
  if (arg == "pvm-nst") return DeployMode::kPvmNst;
  std::fprintf(stderr, "unknown mode '%s', using pvm-nst\n", arg.c_str());
  return DeployMode::kPvmNst;
}

struct StageReport {
  VirtualPlatform* platform;
  SimTime stage_start = 0;
  CounterSet snapshot;

  void begin() {
    stage_start = platform->sim().now();
    snapshot = platform->counters();
  }
  void end(const char* stage) {
    const CounterSet delta = platform->counters().delta_since(snapshot);
    std::printf("%-28s %9.1f us | faults=%llu world-switches=%llu L0-exits=%llu\n", stage,
                static_cast<double>(platform->sim().now() - stage_start) / 1e3,
                static_cast<unsigned long long>(delta.get(Counter::kGuestPageFault)),
                static_cast<unsigned long long>(delta.get(Counter::kWorldSwitch)),
                static_cast<unsigned long long>(delta.get(Counter::kL0Exit)));
  }
};

}  // namespace

int main(int argc, char** argv) {
  PlatformConfig config;
  config.mode = parse_mode(argc, argv);
  VirtualPlatform platform(config);
  std::printf("deployment: %s\n\n", std::string(deploy_mode_name(config.mode)).c_str());

  SecureContainer& container = platform.create_container("demo");
  StageReport report{&platform};

  report.begin();
  platform.sim().spawn(container.boot(96));
  platform.sim().run();
  report.end("boot (RunD-style startup)");

  GuestKernel& kernel = container.kernel();
  Vcpu& vcpu = container.vcpu(0);
  GuestProcess* init = container.init_process();

  auto run_stage = [&](const char* name, Task<void> task) {
    report.begin();
    platform.sim().spawn(std::move(task));
    platform.sim().run();
    report.end(name);
  };

  run_stage("mmap + touch 128 pages", [](GuestKernel& k, Vcpu& v, GuestProcess& p) -> Task<void> {
    const std::uint64_t base = co_await k.sys_mmap(v, p, 128 * kPageSize);
    for (int i = 0; i < 128; ++i) {
      co_await k.touch(v, p, base + static_cast<std::uint64_t>(i) * kPageSize, true);
    }
  }(kernel, vcpu, *init));

  run_stage("1000 getpid() syscalls", [](GuestKernel& k, Vcpu& v, GuestProcess& p) -> Task<void> {
    for (int i = 0; i < 1000; ++i) {
      co_await k.sys_getpid(v, p);
    }
  }(kernel, vcpu, *init));

  run_stage("fork + child COW + exit",
            [](GuestKernel& k, Vcpu& v, GuestProcess& p) -> Task<void> {
              GuestProcess* child = co_await k.sys_fork(v, p);
              co_await k.mem().activate_process(v, *child, false);
              // The child dirties a few inherited pages: COW breaks.
              for (int i = 0; i < 8; ++i) {
                co_await k.touch(v, *child,
                                 GuestProcess::kStackBase + static_cast<std::uint64_t>(i) * kPageSize,
                                 true);
              }
              co_await k.sys_exit(v, *child);
              co_await k.mem().activate_process(v, p, false);
            }(kernel, vcpu, *init));

  run_stage("fork + exec (shell-style)",
            [](GuestKernel& k, Vcpu& v, GuestProcess& p) -> Task<void> {
              GuestProcess* child = co_await k.sys_fork(v, p);
              co_await k.mem().activate_process(v, *child, false);
              co_await k.sys_exec(v, *child, 48);
              co_await k.sys_exit(v, *child);
              co_await k.mem().activate_process(v, p, false);
            }(kernel, vcpu, *init));

  run_stage("signal delivery x100", [](GuestKernel& k, Vcpu& v, GuestProcess& p) -> Task<void> {
    for (int i = 0; i < 100; ++i) {
      co_await k.deliver_signal(v, p);
    }
  }(kernel, vcpu, *init));

  run_stage("file create/write/delete x20",
            [](GuestKernel& k, Vcpu& v, GuestProcess& p, SecureContainer& c) -> Task<void> {
              for (int i = 0; i < 20; ++i) {
                co_await k.sys_file_op(v, p, 45 * kNsPerUs, 4, 0);
                co_await k.do_io(v, p, c.io(), 16 * 1024);
                co_await k.sys_file_op(v, p, 30 * kNsPerUs, 0, 4);
              }
            }(kernel, vcpu, *init, container));

  std::printf("\ntotals: virtual time %.3f ms, %llu world switches, %llu L0 exits\n",
              static_cast<double>(platform.sim().now()) / 1e6,
              static_cast<unsigned long long>(platform.counters().get(Counter::kWorldSwitch)),
              static_cast<unsigned long long>(platform.counters().get(Counter::kL0Exit)));
  return 0;
}
