// Protocol tracing: performs one fresh-page guest fault under PVM-on-EPT and
// under EPT-on-EPT with the event trace enabled, and prints the numbered
// step sequences — a live rendering of the paper's Figure 9 and Figure 3(b).

#include <cstdio>

#include "src/backends/platform.h"

using namespace pvm;

namespace {

void trace_one_fault(DeployMode mode, const char* title, const char* figure) {
  PlatformConfig config;
  config.mode = mode;
  VirtualPlatform platform(config);
  SecureContainer& container = platform.create_container("t");
  platform.sim().spawn(container.boot(16));
  platform.sim().run();

  GuestProcess& proc = *container.init_process();
  proc.vmas()[GuestProcess::kHeapBase] = Vma{GuestProcess::kHeapBase, 1ull << 20, true};

  // Warm the neighbouring page so table structure exists; the traced fault
  // then needs exactly one GPT store (the n=1 case of the formulas).
  platform.sim().spawn([](SecureContainer& c, GuestProcess& p) -> Task<void> {
    co_await c.kernel().touch(c.vcpu(0), p, GuestProcess::kHeapBase, true);
  }(container, proc));
  platform.sim().run();

  platform.trace().set_enabled(true);
  const CounterSet before = platform.counters();
  platform.sim().spawn([](SecureContainer& c, GuestProcess& p) -> Task<void> {
    co_await c.kernel().touch(c.vcpu(0), p, GuestProcess::kHeapBase + kPageSize, true);
  }(container, proc));
  platform.sim().run();
  const CounterSet delta = platform.counters().delta_since(before);

  std::printf("=== %s (%s) ===\n", title, figure);
  std::printf("%s", platform.trace().render().c_str());
  std::printf("-> %llu world switches, %llu exits to L0\n\n",
              static_cast<unsigned long long>(delta.get(Counter::kWorldSwitch)),
              static_cast<unsigned long long>(delta.get(Counter::kL0Exit)));
}

}  // namespace

int main() {
  std::printf("One fresh-page guest fault, step by step, per scheme.\n\n");
  trace_one_fault(DeployMode::kPvmNst, "PVM-on-EPT", "paper Fig. 9: 2n+4 switches, no L0");
  trace_one_fault(DeployMode::kKvmEptNst, "EPT-on-EPT",
                  "paper Fig. 3(b): 2n+6 switches, n+3 L0 exits");
  trace_one_fault(DeployMode::kSptOnEptNst, "SPT-on-EPT",
                  "paper Fig. 3(a): 4n+8 switches, 2n+4 L0 exits");
  return 0;
}
