// Quickstart: create a PVM nested platform, boot a secure container, run a
// small workload, and inspect what the virtualization stack did.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "src/backends/platform.h"

using namespace pvm;

int main() {
  // 1. Describe the deployment: a PVM guest hypervisor inside an L1 cloud
  //    instance, all optimizations on (the paper's "pvm (NST)" scenario).
  PlatformConfig config;
  config.mode = DeployMode::kPvmNst;

  VirtualPlatform platform(config);

  // 2. Create and boot one secure container (a Kata-style lightweight VM).
  SecureContainer& container = platform.create_container("quickstart");
  platform.sim().spawn(container.boot(/*init_pages=*/64));
  platform.sim().run();
  std::printf("container '%s' booted in %.1f us of virtual time\n",
              container.name().c_str(),
              static_cast<double>(container.boot_latency()) / 1e3);

  // 3. Run a workload: map memory, touch it, make some syscalls.
  platform.sim().spawn([](SecureContainer& c) -> Task<void> {
    GuestKernel& kernel = c.kernel();
    Vcpu& vcpu = c.vcpu(0);
    GuestProcess& proc = *c.init_process();

    const std::uint64_t buffer = co_await kernel.sys_mmap(vcpu, proc, 64 * kPageSize);
    for (int i = 0; i < 64; ++i) {
      co_await kernel.touch(vcpu, proc, buffer + static_cast<std::uint64_t>(i) * kPageSize,
                            /*write=*/true);
    }
    for (int i = 0; i < 100; ++i) {
      co_await kernel.sys_getpid(vcpu, proc);
    }
    co_await kernel.do_io(vcpu, proc, c.io(), 64 * 1024);
    co_await kernel.sys_munmap(vcpu, proc, buffer);
  }(container));
  platform.sim().run();

  // 4. Inspect the counters: the headline property is visible immediately —
  //    page faults were handled without a single exit to the L0 hypervisor.
  const CounterSet& counters = platform.counters();
  std::printf("\nvirtual time elapsed : %.3f ms\n",
              static_cast<double>(platform.sim().now()) / 1e6);
  std::printf("guest page faults    : %llu\n",
              static_cast<unsigned long long>(counters.get(Counter::kGuestPageFault)));
  std::printf("world switches       : %llu\n",
              static_cast<unsigned long long>(counters.get(Counter::kWorldSwitch)));
  std::printf("direct switches      : %llu (syscalls bypassing the hypervisor)\n",
              static_cast<unsigned long long>(counters.get(Counter::kDirectSwitch)));
  std::printf("SPT entries filled   : %llu (%llu by prefault)\n",
              static_cast<unsigned long long>(counters.get(Counter::kSptEntryFilled)),
              static_cast<unsigned long long>(counters.get(Counter::kPrefaultFill)));
  std::printf("exits to L0          : %llu (interrupt/I-O only — never for memory)\n",
              static_cast<unsigned long long>(counters.get(Counter::kL0Exit)));
  return 0;
}
